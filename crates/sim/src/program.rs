//! A vector-instruction program representation and its interpreter.
//!
//! The [`crate::Kernel`] closure API executes one wavefront to completion
//! before the next — fine for value-locality studies of a single
//! wavefront's stream, but real Evergreen compute units **interleave**
//! wavefronts on the ALU engine, which perturbs each FPU's operand stream
//! and therefore the 2-entry FIFO's temporal locality. Interleaving
//! requires suspending a wavefront between instructions, which closures
//! cannot do; [`VProgram`] can: it is a flat list of vector instructions
//! over a register file, so the scheduler in
//! [`crate::Device::run_program`] is free to issue instruction *i* of
//! wavefront A, then instruction *j* of wavefront B.
//!
//! The representation doubles as a model of the paper's §3 "clause-based
//! format": a `VProgram` is one ALU clause; gathers/scatters stand in for
//! the TEX clauses that surround it.
//!
//! # Examples
//!
//! ```
//! use tm_sim::program::{Bindings, Src, VInst, VProgram};
//! use tm_sim::{Device, DeviceConfig};
//! use tm_fpu::FpOp;
//!
//! // out[i] = sqrt(in[i]) + 1.0
//! let program = VProgram::new(2, vec![
//!     VInst::Gather { dst: 0, data: 0, indices: 1 },
//!     VInst::Alu { op: FpOp::Sqrt, dst: 1, srcs: vec![Src::Reg(0)] },
//!     VInst::Alu { op: FpOp::Add, dst: 1, srcs: vec![Src::Reg(1), Src::Imm(1.0)] },
//!     VInst::Scatter { src: 1, data: 2, indices: 1 },
//! ]).expect("well-formed program");
//!
//! let n = 128;
//! let mut bindings = Bindings::new(vec![
//!     (0..n).map(|i| (i % 4) as f32).collect(), // input
//!     (0..n).map(|i| i as f32).collect(),       // identity indices
//!     vec![0.0; n],                             // output
//! ]);
//! let mut device = Device::new(DeviceConfig::default());
//! device.run_program(&program, &mut bindings, n, 1);
//! assert_eq!(bindings.buffer(2)[5], 2.0); // sqrt(1) + 1
//! ```

use std::fmt;

/// A virtual vector-register index.
pub type VReg8 = u8;

/// A buffer index into a [`Bindings`] set.
pub type BufferId = usize;

/// A source operand of an ALU instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Src {
    /// A vector register.
    Reg(VReg8),
    /// An immediate (the same literal in every lane — Evergreen's literal
    /// constants).
    Imm(f32),
}

/// One vector instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum VInst {
    /// An FP ALU instruction over the active lanes.
    Alu {
        /// The opcode.
        op: tm_fpu::FpOp,
        /// Destination register.
        dst: VReg8,
        /// Source operands (length must equal the opcode's arity).
        srcs: Vec<Src>,
    },
    /// `dst[lane] = data[indices[gid]]` — an indexed load (a TEX-clause
    /// fetch). Indices come from a host-prepared buffer of positions, one
    /// per work-item, read at the work-item's global id.
    Gather {
        /// Destination register.
        dst: VReg8,
        /// Buffer holding the data.
        data: BufferId,
        /// Buffer holding one f32 index per work-item.
        indices: BufferId,
    },
    /// `data[indices[gid]] = src[lane]` — an indexed store.
    Scatter {
        /// Source register.
        src: VReg8,
        /// Buffer written.
        data: BufferId,
        /// Buffer holding one f32 index per work-item.
        indices: BufferId,
    },
    /// `dst[lane] = gid as f32` — the work-item id (Evergreen's
    /// `get_global_id`).
    LaneId {
        /// Destination register.
        dst: VReg8,
    },
}

/// A straight-line vector program (one ALU clause).
#[derive(Debug, Clone, PartialEq)]
pub struct VProgram {
    registers: usize,
    instructions: Vec<VInst>,
}

/// Why a program failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateProgramError(String);

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid vector program: {}", self.0)
    }
}

impl std::error::Error for ValidateProgramError {}

impl VProgram {
    /// Builds and validates a program with `registers` vector registers.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateProgramError`] when an instruction references a
    /// register out of range or an ALU arity does not match its opcode.
    pub fn new(registers: usize, instructions: Vec<VInst>) -> Result<Self, ValidateProgramError> {
        let check_reg = |r: VReg8, what: &str| {
            if (r as usize) < registers {
                Ok(())
            } else {
                Err(ValidateProgramError(format!(
                    "{what} register r{r} out of range (program has {registers})"
                )))
            }
        };
        for (i, inst) in instructions.iter().enumerate() {
            match inst {
                VInst::Alu { op, dst, srcs } => {
                    check_reg(*dst, "destination")?;
                    if srcs.len() != op.arity() {
                        return Err(ValidateProgramError(format!(
                            "instruction {i}: {op} expects {} operands, got {}",
                            op.arity(),
                            srcs.len()
                        )));
                    }
                    for s in srcs {
                        if let Src::Reg(r) = s {
                            check_reg(*r, "source")?;
                        }
                    }
                }
                VInst::Gather { dst, .. } | VInst::LaneId { dst } => check_reg(*dst, "destination")?,
                VInst::Scatter { src, .. } => check_reg(*src, "source")?,
            }
        }
        Ok(Self {
            registers,
            instructions,
        })
    }

    /// Number of vector registers.
    #[must_use]
    pub const fn registers(&self) -> usize {
        self.registers
    }

    /// The instruction list.
    #[must_use]
    pub fn instructions(&self) -> &[VInst] {
        &self.instructions
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Pretty-prints the program as an Evergreen-flavoured assembly
    /// listing — handy when debugging IR builders.
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_sim::program::{Src, VInst, VProgram};
    /// use tm_fpu::FpOp;
    ///
    /// let p = VProgram::new(2, vec![
    ///     VInst::LaneId { dst: 0 },
    ///     VInst::Alu { op: FpOp::Add, dst: 1, srcs: vec![Src::Reg(0), Src::Imm(1.0)] },
    /// ]).unwrap();
    /// let listing = p.disassemble();
    /// assert!(listing.contains("ADD    r1, r0, #1"));
    /// ```
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = format!("; {} registers, {} instructions\n", self.registers, self.len());
        for (pc, inst) in self.instructions.iter().enumerate() {
            let body = match inst {
                VInst::Alu { op, dst, srcs } => {
                    let operands: Vec<String> = srcs
                        .iter()
                        .map(|s| match s {
                            Src::Reg(r) => format!("r{r}"),
                            Src::Imm(v) => format!("#{v}"),
                        })
                        .collect();
                    format!("{:<6} r{dst}, {}", op.mnemonic(), operands.join(", "))
                }
                VInst::Gather { dst, data, indices } => {
                    format!("GATHER r{dst}, buf{data}[buf{indices}[gid]]")
                }
                VInst::Scatter { src, data, indices } => {
                    format!("SCATTR buf{data}[buf{indices}[gid]], r{src}")
                }
                VInst::LaneId { dst } => format!("LANEID r{dst}"),
            };
            out.push_str(&format!("{pc:>4}: {body}\n"));
        }
        out
    }

    /// Per-opcode ALU instruction counts — the static instruction mix.
    #[must_use]
    pub fn op_histogram(&self) -> Vec<(tm_fpu::FpOp, usize)> {
        let mut counts: std::collections::BTreeMap<tm_fpu::FpOp, usize> =
            std::collections::BTreeMap::new();
        for inst in &self.instructions {
            if let VInst::Alu { op, .. } = inst {
                *counts.entry(*op).or_default() += 1;
            }
        }
        counts.into_iter().collect()
    }
}

/// The buffers a program runs against.
#[derive(Debug, Clone, PartialEq)]
pub struct Bindings {
    buffers: Vec<Vec<f32>>,
}

impl Bindings {
    /// Wraps a set of buffers; `BufferId` N is `buffers[N]`.
    #[must_use]
    pub fn new(buffers: Vec<Vec<f32>>) -> Self {
        Self { buffers }
    }

    /// Read access to buffer `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn buffer(&self, id: BufferId) -> &[f32] {
        &self.buffers[id]
    }

    /// Write access to buffer `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn buffer_mut(&mut self, id: BufferId) -> &mut Vec<f32> {
        &mut self.buffers[id]
    }

    /// Number of bound buffers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether no buffer is bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    pub(crate) fn gather(&self, data: BufferId, indices: BufferId, gid: usize) -> f32 {
        let idx = self.buffers[indices][gid] as usize;
        self.buffers[data][idx]
    }

    pub(crate) fn scatter(&mut self, data: BufferId, indices: BufferId, gid: usize, value: f32) {
        let idx = self.scatter_index(indices, gid);
        self.buffers[data][idx] = value;
    }

    /// Resolves the element a scatter for `gid` targets — used by the
    /// parallel engine to journal writes for deterministic replay.
    pub(crate) fn scatter_index(&self, indices: BufferId, gid: usize) -> usize {
        self.buffers[indices][gid] as usize
    }

    /// Applies a raw journaled write.
    pub(crate) fn apply_write(&mut self, data: BufferId, index: usize, value: f32) {
        self.buffers[data][index] = value;
    }
}

/// Dependence-aware refinement of the engines' buffer-level hazard
/// check: whether every scatter→read dependence in `program` is
/// **lane-private**, i.e. each location a work-item reads back (through
/// a gather) is written only by that same work-item's scatters.
///
/// The buffer-level check (`scattered buffer is also gathered`) is
/// conservative: an in-place stage program — like the FWT butterfly,
/// whose work-items own disjoint `(lo, hi)` element pairs — trips it
/// even though no lane ever observes another lane's write, forcing a
/// sequential fallback. This content-level analysis inspects the actual
/// index buffers instead:
///
/// - a scattered buffer used as an *index* buffer anywhere is unsafe
///   (its contents, and therefore the addressing, change mid-run, so the
///   initial contents prove nothing);
/// - otherwise the per-location writer sets are computed from the index
///   buffers, and every gathered location's writers must be a subset of
///   the gathering work-item itself.
///
/// When this holds, snapshot-bindings execution with journaled scatter
/// replay is bit-identical to the sequential interleaving: each lane
/// sees exactly its own writes (per-lane program order is preserved by
/// every engine), locations nobody scatters keep their snapshot value,
/// and write/write conflicts between lanes are resolved by the
/// deterministic dispatch-order replay.
///
/// `global_size` is the dispatched ND-range; index buffers shorter than
/// it are reported unsafe (the run would panic anyway).
#[must_use]
pub fn hazards_are_lane_private(
    program: &VProgram,
    bindings: &Bindings,
    global_size: usize,
) -> bool {
    use std::collections::{BTreeMap, BTreeSet};

    let scattered: BTreeSet<BufferId> = program
        .instructions()
        .iter()
        .filter_map(|inst| match inst {
            VInst::Scatter { data, .. } => Some(*data),
            _ => None,
        })
        .collect();
    if scattered.is_empty() {
        return true;
    }
    // Addressing must be static for the writer-set analysis to be sound.
    for inst in program.instructions() {
        let indices = match inst {
            VInst::Gather { indices, .. } | VInst::Scatter { indices, .. } => indices,
            VInst::Alu { .. } | VInst::LaneId { .. } => continue,
        };
        if scattered.contains(indices) {
            return false;
        }
    }

    /// The set of work-items writing one location, collapsed to what the
    /// subset test needs.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Writers {
        One(usize),
        Many,
    }
    let mut writer_sets: BTreeMap<BufferId, BTreeMap<usize, Writers>> = BTreeMap::new();
    for inst in program.instructions() {
        if let VInst::Scatter { data, indices, .. } = inst {
            let idx = bindings.buffer(*indices);
            if idx.len() < global_size {
                return false;
            }
            let map = writer_sets.entry(*data).or_default();
            for (gid, loc) in idx.iter().take(global_size).enumerate() {
                map.entry(*loc as usize)
                    .and_modify(|w| {
                        if *w != Writers::One(gid) {
                            *w = Writers::Many;
                        }
                    })
                    .or_insert(Writers::One(gid));
            }
        }
    }
    for inst in program.instructions() {
        if let VInst::Gather { data, indices, .. } = inst {
            let Some(map) = writer_sets.get(data) else {
                continue;
            };
            let idx = bindings.buffer(*indices);
            if idx.len() < global_size {
                return false;
            }
            for (gid, loc) in idx.iter().take(global_size).enumerate() {
                match map.get(&(*loc as usize)) {
                    None => {}
                    Some(Writers::One(w)) if *w == gid => {}
                    Some(_) => return false,
                }
            }
        }
    }
    true
}

/// The execution state of one in-flight wavefront: program counter plus a
/// register file of per-lane values.
#[derive(Debug, Clone)]
pub(crate) struct WavefrontContext {
    pub lane_ids: Vec<usize>,
    pub pc: usize,
    pub regs: Vec<Vec<f32>>,
}

impl WavefrontContext {
    pub fn new(lane_ids: Vec<usize>, registers: usize) -> Self {
        let lanes = lane_ids.len();
        Self {
            lane_ids,
            pc: 0,
            regs: vec![vec![0.0; lanes]; registers],
        }
    }

    pub fn done(&self, program: &VProgram) -> bool {
        self.pc >= program.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_fpu::FpOp;

    #[test]
    fn validation_rejects_bad_registers() {
        let err = VProgram::new(
            1,
            vec![VInst::Alu {
                op: FpOp::Neg,
                dst: 1,
                srcs: vec![Src::Reg(0)],
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn validation_rejects_bad_arity() {
        let err = VProgram::new(
            2,
            vec![VInst::Alu {
                op: FpOp::Add,
                dst: 0,
                srcs: vec![Src::Reg(0)],
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("expects 2 operands"));
    }

    #[test]
    fn disassembly_covers_every_instruction_form() {
        let p = VProgram::new(
            2,
            vec![
                VInst::LaneId { dst: 0 },
                VInst::Gather {
                    dst: 1,
                    data: 0,
                    indices: 1,
                },
                VInst::Alu {
                    op: FpOp::MulAdd,
                    dst: 1,
                    srcs: vec![Src::Reg(1), Src::Imm(2.0), Src::Reg(0)],
                },
                VInst::Scatter {
                    src: 1,
                    data: 2,
                    indices: 1,
                },
            ],
        )
        .unwrap();
        let listing = p.disassemble();
        assert!(listing.contains("LANEID r0"));
        assert!(listing.contains("GATHER r1, buf0[buf1[gid]]"));
        assert!(listing.contains("MULADD r1, r1, #2, r0"));
        assert!(listing.contains("SCATTR buf2[buf1[gid]], r1"));
        assert_eq!(listing.lines().count(), 5); // header + 4 instructions
    }

    #[test]
    fn op_histogram_counts_alu_only() {
        let p = VProgram::new(
            1,
            vec![
                VInst::LaneId { dst: 0 },
                VInst::Alu {
                    op: FpOp::Neg,
                    dst: 0,
                    srcs: vec![Src::Reg(0)],
                },
                VInst::Alu {
                    op: FpOp::Neg,
                    dst: 0,
                    srcs: vec![Src::Reg(0)],
                },
            ],
        )
        .unwrap();
        assert_eq!(p.op_histogram(), vec![(FpOp::Neg, 2)]);
    }

    #[test]
    fn bindings_gather_scatter_round_trip() {
        let mut b = Bindings::new(vec![vec![10.0, 20.0, 30.0], vec![2.0, 0.0, 1.0]]);
        assert_eq!(b.gather(0, 1, 0), 30.0);
        b.scatter(0, 1, 1, 99.0);
        assert_eq!(b.buffer(0)[0], 99.0);
    }

    #[test]
    fn wavefront_context_tracks_completion() {
        let p = VProgram::new(1, vec![VInst::LaneId { dst: 0 }]).unwrap();
        let mut ctx = WavefrontContext::new(vec![0, 1], 1);
        assert!(!ctx.done(&p));
        ctx.pc = 1;
        assert!(ctx.done(&p));
    }

    /// An in-place stage program: gather `buf0[buf1[gid]]`, transform,
    /// scatter back through `buf2[gid]` — the FWT butterfly shape.
    fn in_place_stage() -> VProgram {
        VProgram::new(
            1,
            vec![
                VInst::Gather {
                    dst: 0,
                    data: 0,
                    indices: 1,
                },
                VInst::Alu {
                    op: FpOp::Neg,
                    dst: 0,
                    srcs: vec![Src::Reg(0)],
                },
                VInst::Scatter {
                    src: 0,
                    data: 0,
                    indices: 2,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn lane_private_hazard_accepted_for_disjoint_index_pairs() {
        // Work-item g reads location g and writes location g: every
        // gathered location's sole writer is the gatherer itself.
        let n = 8;
        let idx: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b = Bindings::new(vec![vec![1.0; n], idx.clone(), idx]);
        assert!(hazards_are_lane_private(&in_place_stage(), &b, n));
    }

    #[test]
    fn cross_lane_read_after_write_rejected() {
        // Work-item g reads location g but writes location g+1 (mod n):
        // lane g gathers a location lane g−1 scatters.
        let n = 8;
        let read_idx: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let write_idx: Vec<f32> = (0..n).map(|i| ((i + 1) % n) as f32).collect();
        let b = Bindings::new(vec![vec![1.0; n], read_idx, write_idx]);
        assert!(!hazards_are_lane_private(&in_place_stage(), &b, n));
    }

    #[test]
    fn write_write_conflicts_alone_stay_lane_private() {
        // Every work-item writes location 0 but nobody reads it back:
        // the conflict is resolved by deterministic dispatch-order
        // replay, so the program stays parallelizable.
        let n = 4;
        let p = VProgram::new(
            1,
            vec![
                VInst::LaneId { dst: 0 },
                VInst::Scatter {
                    src: 0,
                    data: 0,
                    indices: 1,
                },
            ],
        )
        .unwrap();
        let b = Bindings::new(vec![vec![0.0; n], vec![0.0; n]]);
        assert!(hazards_are_lane_private(&p, &b, n));
    }

    #[test]
    fn scattered_index_buffer_rejected() {
        // buf1 both addresses the gather and receives a scatter: the
        // addressing mutates mid-run, so the initial contents prove
        // nothing and the analysis must bail.
        let n = 4;
        let p = VProgram::new(
            1,
            vec![
                VInst::Gather {
                    dst: 0,
                    data: 0,
                    indices: 1,
                },
                VInst::Scatter {
                    src: 0,
                    data: 1,
                    indices: 2,
                },
            ],
        )
        .unwrap();
        let idx: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b = Bindings::new(vec![vec![1.0; n], idx.clone(), idx]);
        assert!(!hazards_are_lane_private(&p, &b, n));
    }

    #[test]
    fn short_index_buffer_rejected() {
        // An index buffer shorter than the ND-range cannot prove lane
        // privacy (the run would panic on the out-of-range gid anyway).
        let n = 8;
        let idx: Vec<f32> = (0..n - 1).map(|i| i as f32).collect();
        let b = Bindings::new(vec![vec![1.0; n], idx.clone(), idx]);
        assert!(!hazards_are_lane_private(&in_place_stage(), &b, n));
    }

    #[test]
    fn fwt_butterfly_indices_are_lane_private() {
        // The real shape that motivated the refinement: work-item g of a
        // span-s stage owns the disjoint pair (lo, lo+s) with
        // lo = 2s·(g div s) + (g mod s) — it gathers and scatters
        // exactly its own two locations.
        let n = 16usize;
        let span = 4usize;
        let pairs = n / 2;
        let lo: Vec<f32> = (0..pairs)
            .map(|g| (2 * span * (g / span) + g % span) as f32)
            .collect();
        let hi: Vec<f32> = lo.iter().map(|l| l + span as f32).collect();
        let p = VProgram::new(
            2,
            vec![
                VInst::Gather {
                    dst: 0,
                    data: 0,
                    indices: 1,
                },
                VInst::Gather {
                    dst: 1,
                    data: 0,
                    indices: 2,
                },
                VInst::Alu {
                    op: FpOp::Add,
                    dst: 0,
                    srcs: vec![Src::Reg(0), Src::Reg(1)],
                },
                VInst::Scatter {
                    src: 0,
                    data: 0,
                    indices: 1,
                },
                VInst::Scatter {
                    src: 1,
                    data: 0,
                    indices: 2,
                },
            ],
        )
        .unwrap();
        let b = Bindings::new(vec![vec![1.0; n], lo, hi]);
        assert!(hazards_are_lane_private(&p, &b, pairs));
    }
}
