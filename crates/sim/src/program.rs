//! A vector-instruction program representation and its interpreter.
//!
//! The [`crate::Kernel`] closure API executes one wavefront to completion
//! before the next — fine for value-locality studies of a single
//! wavefront's stream, but real Evergreen compute units **interleave**
//! wavefronts on the ALU engine, which perturbs each FPU's operand stream
//! and therefore the 2-entry FIFO's temporal locality. Interleaving
//! requires suspending a wavefront between instructions, which closures
//! cannot do; [`VProgram`] can: it is a flat list of vector instructions
//! over a register file, so the scheduler in
//! [`crate::Device::run_program`] is free to issue instruction *i* of
//! wavefront A, then instruction *j* of wavefront B.
//!
//! The representation doubles as a model of the paper's §3 "clause-based
//! format": a `VProgram` is one ALU clause; gathers/scatters stand in for
//! the TEX clauses that surround it.
//!
//! # Examples
//!
//! ```
//! use tm_sim::program::{Bindings, Src, VInst, VProgram};
//! use tm_sim::{Device, DeviceConfig};
//! use tm_fpu::FpOp;
//!
//! // out[i] = sqrt(in[i]) + 1.0
//! let program = VProgram::new(2, vec![
//!     VInst::Gather { dst: 0, data: 0, indices: 1 },
//!     VInst::Alu { op: FpOp::Sqrt, dst: 1, srcs: vec![Src::Reg(0)] },
//!     VInst::Alu { op: FpOp::Add, dst: 1, srcs: vec![Src::Reg(1), Src::Imm(1.0)] },
//!     VInst::Scatter { src: 1, data: 2, indices: 1 },
//! ]).expect("well-formed program");
//!
//! let n = 128;
//! let mut bindings = Bindings::new(vec![
//!     (0..n).map(|i| (i % 4) as f32).collect(), // input
//!     (0..n).map(|i| i as f32).collect(),       // identity indices
//!     vec![0.0; n],                             // output
//! ]);
//! let mut device = Device::new(DeviceConfig::default());
//! device.run_program(&program, &mut bindings, n, 1);
//! assert_eq!(bindings.buffer(2)[5], 2.0); // sqrt(1) + 1
//! ```

use std::fmt;

/// A virtual vector-register index.
pub type VReg8 = u8;

/// A buffer index into a [`Bindings`] set.
pub type BufferId = usize;

/// A source operand of an ALU instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Src {
    /// A vector register.
    Reg(VReg8),
    /// An immediate (the same literal in every lane — Evergreen's literal
    /// constants).
    Imm(f32),
}

/// One vector instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum VInst {
    /// An FP ALU instruction over the active lanes.
    Alu {
        /// The opcode.
        op: tm_fpu::FpOp,
        /// Destination register.
        dst: VReg8,
        /// Source operands (length must equal the opcode's arity).
        srcs: Vec<Src>,
    },
    /// `dst[lane] = data[indices[gid]]` — an indexed load (a TEX-clause
    /// fetch). Indices come from a host-prepared buffer of positions, one
    /// per work-item, read at the work-item's global id.
    Gather {
        /// Destination register.
        dst: VReg8,
        /// Buffer holding the data.
        data: BufferId,
        /// Buffer holding one f32 index per work-item.
        indices: BufferId,
    },
    /// `data[indices[gid]] = src[lane]` — an indexed store.
    Scatter {
        /// Source register.
        src: VReg8,
        /// Buffer written.
        data: BufferId,
        /// Buffer holding one f32 index per work-item.
        indices: BufferId,
    },
    /// `dst[lane] = gid as f32` — the work-item id (Evergreen's
    /// `get_global_id`).
    LaneId {
        /// Destination register.
        dst: VReg8,
    },
    /// Pushes a predicate register onto the wavefront's mask stack: a
    /// lane stays active only while every pushed predicate is non-zero
    /// in that lane (Evergreen's `PRED_SET*`/push semantics). While
    /// masked, ALU instructions issue only the active lanes and leave
    /// the destination register untouched in inactive lanes, and
    /// scatters store only from active lanes. Gathers, `LaneId` and
    /// `LaneShift` ignore the mask (they are free host-side moves).
    PushMask {
        /// Predicate register: non-zero means active.
        mask: VReg8,
    },
    /// Pops the most recent [`VInst::PushMask`] predicate.
    PopMask,
    /// `dst[lane] = src[lane + offset]` within the wavefront, `0.0`
    /// where `lane + offset` falls outside it — a cross-lane register
    /// move (no FPU issue). Ignores the mask like a gather.
    LaneShift {
        /// Destination register.
        dst: VReg8,
        /// Source register.
        src: VReg8,
        /// Lane offset (`+1` reads the next-higher lane).
        offset: i32,
    },
}

/// A straight-line vector program (one ALU clause).
#[derive(Debug, Clone, PartialEq)]
pub struct VProgram {
    registers: usize,
    instructions: Vec<VInst>,
}

/// Why a program failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateProgramError(String);

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid vector program: {}", self.0)
    }
}

impl std::error::Error for ValidateProgramError {}

/// Why a disassembly listing failed to parse (see [`VProgram::parse`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    /// 1-based line the error was found on (0 when the listing as a
    /// whole is at fault, e.g. a missing header).
    line: usize,
    message: String,
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "cannot parse program listing: {}", self.message)
        } else {
            write!(f, "cannot parse program listing line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseProgramError {}

impl VProgram {
    /// Builds and validates a program with `registers` vector registers.
    ///
    /// # Errors
    ///
    /// Returns [`ValidateProgramError`] when an instruction references a
    /// register out of range, an ALU arity does not match its opcode, or
    /// a [`VInst::PopMask`] has no matching [`VInst::PushMask`].
    pub fn new(registers: usize, instructions: Vec<VInst>) -> Result<Self, ValidateProgramError> {
        let check_reg = |r: VReg8, what: &str| {
            if (r as usize) < registers {
                Ok(())
            } else {
                Err(ValidateProgramError(format!(
                    "{what} register r{r} out of range (program has {registers})"
                )))
            }
        };
        let mut mask_depth = 0usize;
        for (i, inst) in instructions.iter().enumerate() {
            match inst {
                VInst::Alu { op, dst, srcs } => {
                    check_reg(*dst, "destination")?;
                    if srcs.len() != op.arity() {
                        return Err(ValidateProgramError(format!(
                            "instruction {i}: {op} expects {} operands, got {}",
                            op.arity(),
                            srcs.len()
                        )));
                    }
                    for s in srcs {
                        if let Src::Reg(r) = s {
                            check_reg(*r, "source")?;
                        }
                    }
                }
                VInst::Gather { dst, .. } | VInst::LaneId { dst } => check_reg(*dst, "destination")?,
                VInst::Scatter { src, .. } => check_reg(*src, "source")?,
                VInst::PushMask { mask } => {
                    check_reg(*mask, "mask")?;
                    mask_depth += 1;
                }
                VInst::PopMask => {
                    mask_depth = mask_depth.checked_sub(1).ok_or_else(|| {
                        ValidateProgramError(format!(
                            "instruction {i}: POPM without a matching PUSHM"
                        ))
                    })?;
                }
                VInst::LaneShift { dst, src, .. } => {
                    check_reg(*dst, "destination")?;
                    check_reg(*src, "source")?;
                }
            }
        }
        Ok(Self {
            registers,
            instructions,
        })
    }

    /// Number of vector registers.
    #[must_use]
    pub const fn registers(&self) -> usize {
        self.registers
    }

    /// The instruction list.
    #[must_use]
    pub fn instructions(&self) -> &[VInst] {
        &self.instructions
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Pretty-prints the program as an Evergreen-flavoured assembly
    /// listing — handy when debugging IR builders.
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_sim::program::{Src, VInst, VProgram};
    /// use tm_fpu::FpOp;
    ///
    /// let p = VProgram::new(2, vec![
    ///     VInst::LaneId { dst: 0 },
    ///     VInst::Alu { op: FpOp::Add, dst: 1, srcs: vec![Src::Reg(0), Src::Imm(1.0)] },
    /// ]).unwrap();
    /// let listing = p.disassemble();
    /// assert!(listing.contains("ADD    r1, r0, #1"));
    /// ```
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = format!("; {} registers, {} instructions\n", self.registers, self.len());
        for (pc, inst) in self.instructions.iter().enumerate() {
            let body = match inst {
                VInst::Alu { op, dst, srcs } => {
                    let operands: Vec<String> = srcs
                        .iter()
                        .map(|s| match s {
                            Src::Reg(r) => format!("r{r}"),
                            Src::Imm(v) => format!("#{v}"),
                        })
                        .collect();
                    format!("{:<6} r{dst}, {}", op.mnemonic(), operands.join(", "))
                }
                VInst::Gather { dst, data, indices } => {
                    format!("GATHER r{dst}, buf{data}[buf{indices}[gid]]")
                }
                VInst::Scatter { src, data, indices } => {
                    format!("SCATTR buf{data}[buf{indices}[gid]], r{src}")
                }
                VInst::LaneId { dst } => format!("LANEID r{dst}"),
                VInst::PushMask { mask } => format!("PUSHM  r{mask}"),
                VInst::PopMask => "POPM".to_string(),
                VInst::LaneShift { dst, src, offset } => {
                    format!("SHIFTL r{dst}, r{src}, {offset}")
                }
            };
            out.push_str(&format!("{pc:>4}: {body}\n"));
        }
        out
    }

    /// Parses a [`Self::disassemble`] listing back into a validated
    /// program — the inverse round trip that makes the listing a wire
    /// format (for remote kernel submission) rather than a debug aid.
    ///
    /// # Errors
    ///
    /// Returns [`ParseProgramError`] on malformed lines, unknown
    /// mnemonics, or when the reassembled program fails validation.
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_sim::program::{Src, VInst, VProgram};
    /// use tm_fpu::FpOp;
    ///
    /// let p = VProgram::new(2, vec![
    ///     VInst::LaneId { dst: 0 },
    ///     VInst::Alu { op: FpOp::Add, dst: 1, srcs: vec![Src::Reg(0), Src::Imm(1.5)] },
    /// ]).unwrap();
    /// assert_eq!(VProgram::parse(&p.disassemble()).unwrap(), p);
    /// ```
    pub fn parse(listing: &str) -> Result<Self, ParseProgramError> {
        let fail = |line: usize, message: String| ParseProgramError { line, message };
        let mut registers: Option<usize> = None;
        let mut declared_len: Option<usize> = None;
        let mut instructions = Vec::new();
        for (i, raw) in listing.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix(';') {
                if registers.is_some() {
                    return Err(fail(line_no, "duplicate header line".to_string()));
                }
                let words: Vec<&str> = header.split_whitespace().collect();
                match words.as_slice() {
                    [regs, "registers,", count, "instructions"] => {
                        registers = Some(regs.parse().map_err(|_| {
                            fail(line_no, format!("bad register count {regs:?}"))
                        })?);
                        declared_len = Some(count.parse().map_err(|_| {
                            fail(line_no, format!("bad instruction count {count:?}"))
                        })?);
                    }
                    _ => return Err(fail(line_no, format!("bad header {line:?}"))),
                }
                continue;
            }
            if registers.is_none() {
                return Err(fail(line_no, "instruction before header line".to_string()));
            }
            let (pc, body) = line
                .split_once(':')
                .ok_or_else(|| fail(line_no, format!("missing pc prefix in {line:?}")))?;
            let pc: usize = pc
                .trim()
                .parse()
                .map_err(|_| fail(line_no, format!("bad pc {pc:?}")))?;
            if pc != instructions.len() {
                return Err(fail(
                    line_no,
                    format!("pc {pc} out of order (expected {})", instructions.len()),
                ));
            }
            instructions.push(parse_inst(body.trim()).map_err(|m| fail(line_no, m))?);
        }
        let registers =
            registers.ok_or_else(|| fail(0, "missing header line".to_string()))?;
        if let Some(n) = declared_len {
            if n != instructions.len() {
                return Err(fail(
                    0,
                    format!("header declares {n} instructions, found {}", instructions.len()),
                ));
            }
        }
        Self::new(registers, instructions)
            .map_err(|e| fail(0, e.to_string()))
    }

    /// Whether the program moves values across lanes
    /// ([`VInst::LaneShift`]), which intra-CU lane sharding cannot
    /// execute (a shard would need another shard's register lanes).
    #[must_use]
    pub fn has_cross_lane_ops(&self) -> bool {
        self.instructions
            .iter()
            .any(|i| matches!(i, VInst::LaneShift { .. }))
    }

    /// Per-opcode ALU instruction counts — the static instruction mix.
    #[must_use]
    pub fn op_histogram(&self) -> Vec<(tm_fpu::FpOp, usize)> {
        let mut counts: std::collections::BTreeMap<tm_fpu::FpOp, usize> =
            std::collections::BTreeMap::new();
        for inst in &self.instructions {
            if let VInst::Alu { op, .. } = inst {
                *counts.entry(*op).or_default() += 1;
            }
        }
        counts.into_iter().collect()
    }
}

fn parse_reg(tok: &str) -> Result<VReg8, String> {
    tok.strip_prefix('r')
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("bad register {tok:?}"))
}

fn parse_src(tok: &str) -> Result<Src, String> {
    if let Some(imm) = tok.strip_prefix('#') {
        imm.parse()
            .map(Src::Imm)
            .map_err(|_| format!("bad immediate {tok:?}"))
    } else {
        parse_reg(tok).map(Src::Reg)
    }
}

/// Parses the `buf{data}[buf{indices}[gid]]` addressing form shared by
/// gathers and scatters.
fn parse_buf_expr(tok: &str) -> Result<(BufferId, BufferId), String> {
    let bad = || format!("bad buffer expression {tok:?}");
    let rest = tok.strip_prefix("buf").ok_or_else(bad)?;
    let (data, rest) = rest.split_once('[').ok_or_else(bad)?;
    let rest = rest.strip_prefix("buf").ok_or_else(bad)?;
    let (indices, tail) = rest.split_once('[').ok_or_else(bad)?;
    if tail != "gid]]" {
        return Err(bad());
    }
    Ok((
        data.parse().map_err(|_| bad())?,
        indices.parse().map_err(|_| bad())?,
    ))
}

/// Parses one disassembled instruction body (everything after `pc: `).
fn parse_inst(body: &str) -> Result<VInst, String> {
    let (mnemonic, rest) = match body.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (body, ""),
    };
    let operands: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(", ").collect()
    };
    let want = |n: usize| {
        if operands.len() == n {
            Ok(())
        } else {
            Err(format!("{mnemonic} expects {n} operands, got {}", operands.len()))
        }
    };
    match mnemonic {
        "GATHER" => {
            want(2)?;
            let dst = parse_reg(operands[0])?;
            let (data, indices) = parse_buf_expr(operands[1])?;
            Ok(VInst::Gather { dst, data, indices })
        }
        "SCATTR" => {
            want(2)?;
            let (data, indices) = parse_buf_expr(operands[0])?;
            let src = parse_reg(operands[1])?;
            Ok(VInst::Scatter { src, data, indices })
        }
        "LANEID" => {
            want(1)?;
            Ok(VInst::LaneId { dst: parse_reg(operands[0])? })
        }
        "PUSHM" => {
            want(1)?;
            Ok(VInst::PushMask { mask: parse_reg(operands[0])? })
        }
        "POPM" => {
            want(0)?;
            Ok(VInst::PopMask)
        }
        "SHIFTL" => {
            want(3)?;
            let dst = parse_reg(operands[0])?;
            let src = parse_reg(operands[1])?;
            let offset = operands[2]
                .parse()
                .map_err(|_| format!("bad lane offset {:?}", operands[2]))?;
            Ok(VInst::LaneShift { dst, src, offset })
        }
        _ => {
            let op = *tm_fpu::ALL_OPS
                .iter()
                .find(|op| op.mnemonic() == mnemonic)
                .ok_or_else(|| format!("unknown mnemonic {mnemonic:?}"))?;
            if operands.is_empty() {
                return Err(format!("{mnemonic} is missing its destination"));
            }
            let dst = parse_reg(operands[0])?;
            let srcs = operands[1..]
                .iter()
                .map(|tok| parse_src(tok))
                .collect::<Result<Vec<Src>, String>>()?;
            Ok(VInst::Alu { op, dst, srcs })
        }
    }
}

/// The buffers a program runs against.
#[derive(Debug, Clone, PartialEq)]
pub struct Bindings {
    buffers: Vec<Vec<f32>>,
}

impl Bindings {
    /// Wraps a set of buffers; `BufferId` N is `buffers[N]`.
    #[must_use]
    pub fn new(buffers: Vec<Vec<f32>>) -> Self {
        Self { buffers }
    }

    /// Read access to buffer `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn buffer(&self, id: BufferId) -> &[f32] {
        &self.buffers[id]
    }

    /// Write access to buffer `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn buffer_mut(&mut self, id: BufferId) -> &mut Vec<f32> {
        &mut self.buffers[id]
    }

    /// Number of bound buffers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether no buffer is bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    pub(crate) fn gather(&self, data: BufferId, indices: BufferId, gid: usize) -> f32 {
        let idx = self.buffers[indices][gid] as usize;
        self.buffers[data][idx]
    }

    /// Resolves the element a scatter for `gid` targets — used by the
    /// engines to journal writes for deterministic replay.
    pub(crate) fn scatter_index(&self, indices: BufferId, gid: usize) -> usize {
        self.buffers[indices][gid] as usize
    }

    /// Applies a raw journaled write.
    pub(crate) fn apply_write(&mut self, data: BufferId, index: usize, value: f32) {
        self.buffers[data][index] = value;
    }
}

/// Dependence-aware refinement of the engines' buffer-level hazard
/// check: whether every scatter→read dependence in `program` is
/// **lane-private**, i.e. each location a work-item reads back (through
/// a gather) is written only by that same work-item's scatters.
///
/// The buffer-level check (`scattered buffer is also gathered`) is
/// conservative: an in-place stage program — like the FWT butterfly,
/// whose work-items own disjoint `(lo, hi)` element pairs — trips it
/// even though no lane ever observes another lane's write, forcing a
/// sequential fallback. This content-level analysis inspects the actual
/// index buffers instead:
///
/// - a scattered buffer used as an *index* buffer anywhere is unsafe
///   (its contents, and therefore the addressing, change mid-run, so the
///   initial contents prove nothing);
/// - otherwise the per-location writer sets are computed from the index
///   buffers, and every gathered location's writers must be a subset of
///   the gathering work-item itself.
///
/// When this holds, snapshot-bindings execution with journaled scatter
/// replay is bit-identical to the sequential interleaving: each lane
/// sees exactly its own writes (per-lane program order is preserved by
/// every engine), locations nobody scatters keep their snapshot value,
/// and write/write conflicts between lanes are resolved by the
/// deterministic dispatch-order replay.
///
/// `global_size` is the dispatched ND-range; index buffers shorter than
/// it are reported unsafe (the run would panic anyway).
#[must_use]
pub fn hazards_are_lane_private(
    program: &VProgram,
    bindings: &Bindings,
    global_size: usize,
) -> bool {
    use std::collections::{BTreeMap, BTreeSet};

    let scattered: BTreeSet<BufferId> = program
        .instructions()
        .iter()
        .filter_map(|inst| match inst {
            VInst::Scatter { data, .. } => Some(*data),
            _ => None,
        })
        .collect();
    if scattered.is_empty() {
        return true;
    }
    // Addressing must be static for the writer-set analysis to be sound.
    // Masks and lane shifts never touch buffers: masked scatters only
    // shrink the writer sets computed below (which assume every gid
    // writes), and a lane shift moves values within one wavefront, which
    // every engine steps as a unit — both stay conservative-safe.
    for inst in program.instructions() {
        let indices = match inst {
            VInst::Gather { indices, .. } | VInst::Scatter { indices, .. } => indices,
            VInst::Alu { .. }
            | VInst::LaneId { .. }
            | VInst::PushMask { .. }
            | VInst::PopMask
            | VInst::LaneShift { .. } => continue,
        };
        if scattered.contains(indices) {
            return false;
        }
    }

    // Per-location writer sets, collapsed to what the subset test needs
    // and kept flat — one slot per location of the scattered buffer —
    // because this analysis runs per launch on the threaded engines'
    // hot path (`NONE` = unwritten, `MANY` = more than one writer,
    // anything else = the single writer's gid).
    const NONE: usize = usize::MAX;
    const MANY: usize = usize::MAX - 1;
    let mut writer_sets: BTreeMap<BufferId, Vec<usize>> = BTreeMap::new();
    for inst in program.instructions() {
        if let VInst::Scatter { data, indices, .. } = inst {
            let idx = bindings.buffer(*indices);
            if idx.len() < global_size {
                return false;
            }
            let len = bindings.buffer(*data).len();
            let set = writer_sets.entry(*data).or_insert_with(|| vec![NONE; len]);
            for (gid, loc) in idx.iter().take(global_size).enumerate() {
                let Some(w) = set.get_mut(*loc as usize) else {
                    // An out-of-range scatter index: no engine order is
                    // provably safe, give up.
                    return false;
                };
                if *w != gid {
                    *w = if *w == NONE { gid } else { MANY };
                }
            }
        }
    }
    for inst in program.instructions() {
        if let VInst::Gather { data, indices, .. } = inst {
            let Some(set) = writer_sets.get(data) else {
                continue;
            };
            let idx = bindings.buffer(*indices);
            if idx.len() < global_size {
                return false;
            }
            for (gid, loc) in idx.iter().take(global_size).enumerate() {
                match set.get(*loc as usize).copied().unwrap_or(NONE) {
                    NONE => {}
                    w if w == gid => {}
                    _ => return false,
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_fpu::FpOp;

    #[test]
    fn validation_rejects_bad_registers() {
        let err = VProgram::new(
            1,
            vec![VInst::Alu {
                op: FpOp::Neg,
                dst: 1,
                srcs: vec![Src::Reg(0)],
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn validation_rejects_bad_arity() {
        let err = VProgram::new(
            2,
            vec![VInst::Alu {
                op: FpOp::Add,
                dst: 0,
                srcs: vec![Src::Reg(0)],
            }],
        )
        .unwrap_err();
        assert!(err.to_string().contains("expects 2 operands"));
    }

    #[test]
    fn disassembly_covers_every_instruction_form() {
        let p = VProgram::new(
            2,
            vec![
                VInst::LaneId { dst: 0 },
                VInst::Gather {
                    dst: 1,
                    data: 0,
                    indices: 1,
                },
                VInst::Alu {
                    op: FpOp::MulAdd,
                    dst: 1,
                    srcs: vec![Src::Reg(1), Src::Imm(2.0), Src::Reg(0)],
                },
                VInst::Scatter {
                    src: 1,
                    data: 2,
                    indices: 1,
                },
            ],
        )
        .unwrap();
        let listing = p.disassemble();
        assert!(listing.contains("LANEID r0"));
        assert!(listing.contains("GATHER r1, buf0[buf1[gid]]"));
        assert!(listing.contains("MULADD r1, r1, #2, r0"));
        assert!(listing.contains("SCATTR buf2[buf1[gid]], r1"));
        assert_eq!(listing.lines().count(), 5); // header + 4 instructions
    }

    #[test]
    fn validation_rejects_unmatched_pop() {
        let err = VProgram::new(1, vec![VInst::PopMask]).unwrap_err();
        assert!(err.to_string().contains("POPM without a matching PUSHM"));
    }

    /// One program exercising every instruction form the listing can
    /// carry, including the masking and cross-lane extensions.
    fn all_forms() -> VProgram {
        VProgram::new(
            3,
            vec![
                VInst::LaneId { dst: 0 },
                VInst::Gather {
                    dst: 1,
                    data: 0,
                    indices: 1,
                },
                VInst::Alu {
                    op: FpOp::MulAdd,
                    dst: 1,
                    srcs: vec![Src::Reg(1), Src::Imm(2.5), Src::Reg(0)],
                },
                VInst::LaneShift {
                    dst: 2,
                    src: 1,
                    offset: -1,
                },
                VInst::PushMask { mask: 0 },
                VInst::Scatter {
                    src: 1,
                    data: 2,
                    indices: 1,
                },
                VInst::PopMask,
            ],
        )
        .unwrap()
    }

    #[test]
    fn parse_round_trips_every_instruction_form() {
        let p = all_forms();
        let listing = p.disassemble();
        assert!(listing.contains("SHIFTL r2, r1, -1"));
        assert!(listing.contains("PUSHM  r0"));
        assert!(listing.contains("POPM"));
        assert_eq!(VProgram::parse(&listing).unwrap(), p);
    }

    #[test]
    fn parse_round_trips_random_programs() {
        // A deterministic LCG keeps the test hermetic; 64 random
        // programs cover every form with varied registers, immediates
        // (including negatives and fractions) and offsets.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..64 {
            let registers = 1 + (next() % 8) as usize;
            let reg = |n: u32| (n % registers as u32) as VReg8;
            let mut insts = Vec::new();
            let mut depth = 0usize;
            for _ in 0..(1 + next() % 12) {
                match next() % 6 {
                    0 => insts.push(VInst::LaneId { dst: reg(next()) }),
                    1 => insts.push(VInst::Gather {
                        dst: reg(next()),
                        data: (next() % 4) as BufferId,
                        indices: (next() % 4) as BufferId,
                    }),
                    2 => insts.push(VInst::Scatter {
                        src: reg(next()),
                        data: (next() % 4) as BufferId,
                        indices: (next() % 4) as BufferId,
                    }),
                    3 => insts.push(VInst::LaneShift {
                        dst: reg(next()),
                        src: reg(next()),
                        offset: (next() % 7) as i32 - 3,
                    }),
                    4 => {
                        insts.push(VInst::PushMask { mask: reg(next()) });
                        depth += 1;
                    }
                    _ => {
                        let op = tm_fpu::ALL_OPS[next() as usize % tm_fpu::ALL_OPS.len()];
                        let srcs = (0..op.arity())
                            .map(|_| {
                                if next() % 2 == 0 {
                                    Src::Reg(reg(next()))
                                } else {
                                    Src::Imm((next() as f32 / 977.0) - 1000.0)
                                }
                            })
                            .collect();
                        insts.push(VInst::Alu {
                            op,
                            dst: reg(next()),
                            srcs,
                        });
                    }
                }
            }
            for _ in 0..depth {
                insts.push(VInst::PopMask);
            }
            let p = VProgram::new(registers, insts).unwrap();
            assert_eq!(VProgram::parse(&p.disassemble()).unwrap(), p, "{}", p.disassemble());
        }
    }

    #[test]
    fn parse_rejects_malformed_listings() {
        assert!(VProgram::parse("").is_err());
        assert!(VProgram::parse("0: LANEID r0").is_err()); // missing header
        let good = all_forms().disassemble();
        assert!(VProgram::parse(&good.replace("GATHER", "GOBBLE")).is_err());
        assert!(VProgram::parse(&good.replace("; 3 registers", "; 1 registers")).is_err());
        assert!(VProgram::parse(&good.replace("7 instructions", "9 instructions")).is_err());
    }

    #[test]
    fn op_histogram_counts_alu_only() {
        let p = VProgram::new(
            1,
            vec![
                VInst::LaneId { dst: 0 },
                VInst::Alu {
                    op: FpOp::Neg,
                    dst: 0,
                    srcs: vec![Src::Reg(0)],
                },
                VInst::Alu {
                    op: FpOp::Neg,
                    dst: 0,
                    srcs: vec![Src::Reg(0)],
                },
            ],
        )
        .unwrap();
        assert_eq!(p.op_histogram(), vec![(FpOp::Neg, 2)]);
    }

    #[test]
    fn bindings_gather_scatter_round_trip() {
        let mut b = Bindings::new(vec![vec![10.0, 20.0, 30.0], vec![2.0, 0.0, 1.0]]);
        assert_eq!(b.gather(0, 1, 0), 30.0);
        let idx = b.scatter_index(1, 1);
        b.apply_write(0, idx, 99.0);
        assert_eq!(b.buffer(0)[0], 99.0);
    }

    /// An in-place stage program: gather `buf0[buf1[gid]]`, transform,
    /// scatter back through `buf2[gid]` — the FWT butterfly shape.
    fn in_place_stage() -> VProgram {
        VProgram::new(
            1,
            vec![
                VInst::Gather {
                    dst: 0,
                    data: 0,
                    indices: 1,
                },
                VInst::Alu {
                    op: FpOp::Neg,
                    dst: 0,
                    srcs: vec![Src::Reg(0)],
                },
                VInst::Scatter {
                    src: 0,
                    data: 0,
                    indices: 2,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn lane_private_hazard_accepted_for_disjoint_index_pairs() {
        // Work-item g reads location g and writes location g: every
        // gathered location's sole writer is the gatherer itself.
        let n = 8;
        let idx: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b = Bindings::new(vec![vec![1.0; n], idx.clone(), idx]);
        assert!(hazards_are_lane_private(&in_place_stage(), &b, n));
    }

    #[test]
    fn cross_lane_read_after_write_rejected() {
        // Work-item g reads location g but writes location g+1 (mod n):
        // lane g gathers a location lane g−1 scatters.
        let n = 8;
        let read_idx: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let write_idx: Vec<f32> = (0..n).map(|i| ((i + 1) % n) as f32).collect();
        let b = Bindings::new(vec![vec![1.0; n], read_idx, write_idx]);
        assert!(!hazards_are_lane_private(&in_place_stage(), &b, n));
    }

    #[test]
    fn write_write_conflicts_alone_stay_lane_private() {
        // Every work-item writes location 0 but nobody reads it back:
        // the conflict is resolved by deterministic dispatch-order
        // replay, so the program stays parallelizable.
        let n = 4;
        let p = VProgram::new(
            1,
            vec![
                VInst::LaneId { dst: 0 },
                VInst::Scatter {
                    src: 0,
                    data: 0,
                    indices: 1,
                },
            ],
        )
        .unwrap();
        let b = Bindings::new(vec![vec![0.0; n], vec![0.0; n]]);
        assert!(hazards_are_lane_private(&p, &b, n));
    }

    #[test]
    fn scattered_index_buffer_rejected() {
        // buf1 both addresses the gather and receives a scatter: the
        // addressing mutates mid-run, so the initial contents prove
        // nothing and the analysis must bail.
        let n = 4;
        let p = VProgram::new(
            1,
            vec![
                VInst::Gather {
                    dst: 0,
                    data: 0,
                    indices: 1,
                },
                VInst::Scatter {
                    src: 0,
                    data: 1,
                    indices: 2,
                },
            ],
        )
        .unwrap();
        let idx: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let b = Bindings::new(vec![vec![1.0; n], idx.clone(), idx]);
        assert!(!hazards_are_lane_private(&p, &b, n));
    }

    #[test]
    fn short_index_buffer_rejected() {
        // An index buffer shorter than the ND-range cannot prove lane
        // privacy (the run would panic on the out-of-range gid anyway).
        let n = 8;
        let idx: Vec<f32> = (0..n - 1).map(|i| i as f32).collect();
        let b = Bindings::new(vec![vec![1.0; n], idx.clone(), idx]);
        assert!(!hazards_are_lane_private(&in_place_stage(), &b, n));
    }

    #[test]
    fn fwt_butterfly_indices_are_lane_private() {
        // The real shape that motivated the refinement: work-item g of a
        // span-s stage owns the disjoint pair (lo, lo+s) with
        // lo = 2s·(g div s) + (g mod s) — it gathers and scatters
        // exactly its own two locations.
        let n = 16usize;
        let span = 4usize;
        let pairs = n / 2;
        let lo: Vec<f32> = (0..pairs)
            .map(|g| (2 * span * (g / span) + g % span) as f32)
            .collect();
        let hi: Vec<f32> = lo.iter().map(|l| l + span as f32).collect();
        let p = VProgram::new(
            2,
            vec![
                VInst::Gather {
                    dst: 0,
                    data: 0,
                    indices: 1,
                },
                VInst::Gather {
                    dst: 1,
                    data: 0,
                    indices: 2,
                },
                VInst::Alu {
                    op: FpOp::Add,
                    dst: 0,
                    srcs: vec![Src::Reg(0), Src::Reg(1)],
                },
                VInst::Scatter {
                    src: 0,
                    data: 0,
                    indices: 1,
                },
                VInst::Scatter {
                    src: 1,
                    data: 0,
                    indices: 2,
                },
            ],
        )
        .unwrap();
        let b = Bindings::new(vec![vec![1.0; n], lo, hi]);
        assert!(hazards_are_lane_private(&p, &b, pairs));
    }
}
