//! Device configuration.

use tm_core::{GatePolicy, MatchPolicy, Replacement, DEFAULT_FIFO_DEPTH};
use tm_energy::EnergyModel;
use tm_timing::{RecoveryPolicy, VoltageModel, NOMINAL_VDD};

/// Which architecture variant the device models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ArchMode {
    /// The proposed architecture: baseline detect-then-correct plus the
    /// temporal memoization modules on every FPU.
    #[default]
    Memoized,
    /// The baseline resilient architecture alone (EDS + ECU recovery, no
    /// memoization hardware and none of its energy).
    Baseline,
    /// *Spatial* memoization (Rahimi et al., TCAS-II 2013 — the paper's
    /// reference \[20\]): within each sub-wavefront slot, the first lane
    /// to execute a distinct operand set broadcasts its result to the
    /// other 15 concurrent lanes, which reuse it when their operands
    /// match. No per-FPU FIFO — reuse is purely intra-instruction, which
    /// is exactly the scalability limitation the paper argues temporal
    /// memoization removes.
    Spatial,
}

/// Which execution engine drives the compute units.
///
/// Every backend produces **bit-identical** [`crate::DeviceReport`]s:
/// wavefront → CU assignment, each CU's wavefront order, and the
/// index-order merge of per-CU statistics are the same; the parallel
/// backends only overlap the (already independent) per-SC/per-CU work on
/// OS threads. See `DESIGN.md` § "Execution engine".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecBackend {
    /// One thread walks the wavefronts in dispatch order — the reference
    /// engine.
    #[default]
    Sequential,
    /// One `std::thread` worker per compute unit (scoped threads, no
    /// extra dependencies); results merge deterministically in CU index
    /// order.
    Parallel,
    /// Stream-core-level sharding *within* each compute unit on a shared
    /// work-stealing pool — the only backend that speeds up single-CU
    /// configurations. Shard journals are merged in lane order and
    /// replayed through each CU's real accounting, keeping reports
    /// bit-identical for any shard count; spatial mode falls back to
    /// [`ExecBackend::Parallel`]. See [`crate::IntraCuEngine`].
    IntraCu,
}

impl ExecBackend {
    /// A stable lowercase label for traces, benchmark records and CLI
    /// output (`"sequential"`, `"parallel"`, `"intra-cu"`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Sequential => "sequential",
            Self::Parallel => "parallel",
            Self::IntraCu => "intra-cu",
        }
    }
}

/// Where per-instruction timing-error events come from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorMode {
    /// A fixed per-instruction error rate (the Fig. 10 sweep, 0–4 %).
    FixedRate(f64),
    /// A fixed per-*stage* violation rate: the per-instruction rate then
    /// grows with pipeline depth (`1 − (1 − p)^stages`, see
    /// [`tm_timing::EdsChain`]), so the 16-stage RECIP errs roughly 4×
    /// as often as the 4-stage units — the depth effect §1 of the paper
    /// highlights.
    PerStageRate(f64),
    /// The rate implied by the FPU supply voltage through the
    /// [`VoltageModel`] (the Fig. 11 voltage-overscaling sweep).
    FromVoltage,
}

impl Default for ErrorMode {
    /// Error-free operation.
    fn default() -> Self {
        ErrorMode::FixedRate(0.0)
    }
}

/// Full configuration of a simulated device.
///
/// The defaults model a single Radeon HD 5870 compute-unit pair with the
/// paper's design point: 2-entry FIFOs, exact matching, the 12-cycle
/// baseline recovery, nominal 0.9 V, no injected errors. Experiments
/// override fields with the `with_*` builders.
///
/// # Examples
///
/// ```
/// use tm_sim::{ArchMode, DeviceConfig, ErrorMode};
/// use tm_core::MatchPolicy;
///
/// let config = DeviceConfig::default()
///     .with_policy(MatchPolicy::threshold(0.5))
///     .with_error_mode(ErrorMode::FixedRate(0.02))
///     .with_seed(7);
/// assert_eq!(config.stream_cores_per_cu, 16);
/// assert_eq!(config.arch, ArchMode::Memoized);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Number of compute units (the HD 5870 has 20; experiments default to
    /// 2 for simulation speed — hit rates are per-FPU properties and do not
    /// depend on the CU count).
    pub compute_units: usize,
    /// Stream cores (SIMD lanes) per compute unit.
    pub stream_cores_per_cu: usize,
    /// Work-items per wavefront.
    pub wavefront_size: usize,
    /// Architecture variant.
    pub arch: ArchMode,
    /// Memoization FIFO depth (the paper settles on 2).
    pub fifo_depth: usize,
    /// FIFO replacement policy (FIFO in the paper; LRU for ablation).
    pub replacement: Replacement,
    /// The matching constraint programmed into every module's MMIO window.
    pub policy: MatchPolicy,
    /// Baseline recovery mechanism.
    pub recovery: RecoveryPolicy,
    /// Timing-error source.
    pub error_mode: ErrorMode,
    /// FPU supply voltage (the memo module always stays at nominal).
    pub vdd: f64,
    /// Voltage/error/energy scaling model.
    pub voltage_model: VoltageModel,
    /// Energy constants.
    pub energy_model: EnergyModel,
    /// PRNG seed for error injection.
    pub seed: u64,
    /// Per-compute-unit instruction-trace capacity (`0` disables tracing;
    /// see [`crate::TraceEvent`] and [`crate::locality`]).
    pub trace_depth: usize,
    /// Optional adaptive power gating of every memoization module (the
    /// automated form of the paper's software-controlled power gating).
    pub adaptive_gate: Option<GatePolicy>,
    /// Which execution engine drives the compute units.
    pub backend: ExecBackend,
    /// Fixed shard count per compute unit for [`ExecBackend::IntraCu`]
    /// (`None` picks it from the host's available parallelism). Results
    /// are shard-count-invariant; pinning exists for tests and
    /// benchmarks.
    pub intra_cu_shards: Option<usize>,
    /// Enables online value-locality profiling (a
    /// [`crate::sink::LocalitySink`] per compute unit) — the streaming
    /// alternative to recording a bounded trace and post-processing it
    /// with [`crate::locality`].
    pub locality_tracking: bool,
    /// Initial cycle-window width for time-resolved metrics (`None`
    /// disables the [`crate::sink::MetricsSink`]). When set, every
    /// compute unit folds its event stream into per-window series — hit
    /// rate, masked errors, recoveries, energy — per opcode and in total;
    /// see [`crate::ComputeUnit::metrics`].
    pub metrics_window: Option<u64>,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            compute_units: 2,
            stream_cores_per_cu: 16,
            wavefront_size: 64,
            arch: ArchMode::Memoized,
            fifo_depth: DEFAULT_FIFO_DEPTH,
            replacement: Replacement::Fifo,
            policy: MatchPolicy::Exact,
            recovery: RecoveryPolicy::default(),
            error_mode: ErrorMode::default(),
            vdd: NOMINAL_VDD,
            voltage_model: VoltageModel::tsmc45(),
            energy_model: EnergyModel::tsmc45(),
            seed: 0xC0FFEE,
            trace_depth: 0,
            adaptive_gate: None,
            backend: ExecBackend::default(),
            intra_cu_shards: None,
            locality_tracking: false,
            metrics_window: None,
        }
    }
}

impl DeviceConfig {
    /// The full Radeon HD 5870 geometry (20 compute units).
    #[must_use]
    pub fn radeon_hd_5870() -> Self {
        Self {
            compute_units: 20,
            ..Self::default()
        }
    }

    /// Sets the matching policy.
    #[must_use]
    pub fn with_policy(mut self, policy: MatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the architecture variant.
    #[must_use]
    pub fn with_arch(mut self, arch: ArchMode) -> Self {
        self.arch = arch;
        self
    }

    /// Sets the FIFO depth.
    #[must_use]
    pub fn with_fifo_depth(mut self, depth: usize) -> Self {
        self.fifo_depth = depth;
        self
    }

    /// Sets the replacement policy.
    #[must_use]
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// Sets the timing-error source.
    #[must_use]
    pub fn with_error_mode(mut self, mode: ErrorMode) -> Self {
        self.error_mode = mode;
        self
    }

    /// Sets the recovery policy.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets the FPU supply voltage (VOS experiments).
    #[must_use]
    pub fn with_vdd(mut self, vdd: f64) -> Self {
        self.vdd = vdd;
        self
    }

    /// Sets the error-injection seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of compute units.
    #[must_use]
    pub fn with_compute_units(mut self, n: usize) -> Self {
        self.compute_units = n;
        self
    }

    /// Enables instruction tracing with the given per-CU capacity.
    #[must_use]
    pub fn with_trace_depth(mut self, depth: usize) -> Self {
        self.trace_depth = depth;
        self
    }

    /// Enables adaptive power gating of the memoization modules.
    #[must_use]
    pub fn with_adaptive_gate(mut self, policy: GatePolicy) -> Self {
        self.adaptive_gate = Some(policy);
        self
    }

    /// Selects the execution engine.
    #[must_use]
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Shorthand for [`DeviceConfig::with_backend`] with
    /// [`ExecBackend::Parallel`] — one worker thread per compute unit.
    #[must_use]
    pub fn with_parallel(self) -> Self {
        self.with_backend(ExecBackend::Parallel)
    }

    /// Shorthand for [`DeviceConfig::with_backend`] with
    /// [`ExecBackend::IntraCu`] — stream-core-level sharding within each
    /// compute unit.
    #[must_use]
    pub fn with_intra_cu(self) -> Self {
        self.with_backend(ExecBackend::IntraCu)
    }

    /// Selects the intra-CU backend with a pinned shard count per
    /// compute unit (clamped to `1..=stream_cores_per_cu` at run time).
    #[must_use]
    pub fn with_intra_cu_shards(mut self, shards: usize) -> Self {
        self.intra_cu_shards = Some(shards);
        self.with_backend(ExecBackend::IntraCu)
    }

    /// Enables online value-locality profiling.
    #[must_use]
    pub fn with_locality_tracking(mut self) -> Self {
        self.locality_tracking = true;
        self
    }

    /// Enables time-windowed metrics with the given initial window width
    /// in cycles (see [`crate::sink::MetricsSink`]).
    #[must_use]
    pub fn with_metrics_window(mut self, cycles: u64) -> Self {
        self.metrics_window = Some(cycles);
        self
    }

    /// The per-instruction error rate this configuration induces for a
    /// standard 4-stage unit.
    #[must_use]
    pub fn effective_error_rate(&self) -> f64 {
        self.effective_error_rate_for_stages(4)
    }

    /// The per-instruction error rate for a unit of the given pipeline
    /// depth.
    #[must_use]
    pub fn effective_error_rate_for_stages(&self, stages: u32) -> f64 {
        match self.error_mode {
            ErrorMode::FixedRate(r) => r,
            ErrorMode::PerStageRate(p) => {
                tm_timing::EdsChain::new(stages).instruction_error_rate(p)
            }
            ErrorMode::FromVoltage => self.voltage_model.error_rate(self.vdd),
        }
    }

    /// Dynamic-energy scale of the FPU at the configured supply.
    #[must_use]
    pub fn dynamic_scale(&self) -> f64 {
        self.voltage_model.dynamic_energy_scale(self.vdd)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical geometry (zero CUs/SCs, a wavefront that is
    /// not a positive multiple of the SC count) or an out-of-range error
    /// rate.
    pub fn validate(&self) {
        assert!(self.compute_units > 0, "need at least one compute unit");
        assert!(self.stream_cores_per_cu > 0, "need at least one stream core");
        assert!(
            self.wavefront_size > 0 && self.wavefront_size.is_multiple_of(self.stream_cores_per_cu),
            "wavefront size {} must be a positive multiple of the SC count {}",
            self.wavefront_size,
            self.stream_cores_per_cu
        );
        assert!(self.fifo_depth > 0, "FIFO depth must be at least 1");
        let r = self.effective_error_rate();
        assert!((0.0..=1.0).contains(&r), "error rate {r} out of range");
        assert!(self.vdd > 0.0, "vdd must be positive");
        assert!(
            self.metrics_window != Some(0),
            "metrics window width must be non-zero"
        );
    }

    /// Sub-wavefront slots per vector instruction
    /// (`wavefront_size / stream_cores_per_cu`, 4 on Evergreen).
    #[must_use]
    pub fn subwavefront_slots(&self) -> usize {
        self.wavefront_size / self.stream_cores_per_cu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_design_point() {
        let c = DeviceConfig::default();
        c.validate();
        assert_eq!(c.fifo_depth, 2);
        assert_eq!(c.subwavefront_slots(), 4);
        assert_eq!(c.effective_error_rate(), 0.0);
        assert!((c.dynamic_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn radeon_geometry() {
        let c = DeviceConfig::radeon_hd_5870();
        assert_eq!(c.compute_units, 20);
        assert_eq!(c.stream_cores_per_cu, 16);
        assert_eq!(c.wavefront_size, 64);
    }

    #[test]
    fn voltage_mode_derives_rate() {
        let c = DeviceConfig::default()
            .with_error_mode(ErrorMode::FromVoltage)
            .with_vdd(0.80);
        assert!(c.effective_error_rate() > 0.2);
        assert!(c.dynamic_scale() < 0.8);
    }

    #[test]
    #[should_panic(expected = "multiple of the SC count")]
    fn validate_rejects_ragged_wavefront() {
        let c = DeviceConfig {
            wavefront_size: 63,
            ..DeviceConfig::default()
        };
        c.validate();
    }

    #[test]
    fn builders_chain() {
        let c = DeviceConfig::default()
            .with_fifo_depth(8)
            .with_seed(1)
            .with_compute_units(1)
            .with_arch(ArchMode::Baseline);
        assert_eq!(c.fifo_depth, 8);
        assert_eq!(c.arch, ArchMode::Baseline);
    }

    #[test]
    fn backend_defaults_to_sequential() {
        let c = DeviceConfig::default();
        assert_eq!(c.backend, ExecBackend::Sequential);
        assert!(!c.locality_tracking);
        let c = c.with_parallel().with_locality_tracking();
        assert_eq!(c.backend, ExecBackend::Parallel);
        assert!(c.locality_tracking);
    }
}
