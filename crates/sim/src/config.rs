//! Device configuration: the validated builder and error taxonomy.

use std::fmt;
use tm_core::{GatePolicy, MatchPolicy, Replacement, DEFAULT_FIFO_DEPTH};
use tm_energy::EnergyModel;
use tm_timing::{ErrorModelSpec, RecoveryPolicy, VoltageModel, NOMINAL_VDD};

/// Which architecture variant the device models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ArchMode {
    /// The proposed architecture: baseline detect-then-correct plus the
    /// temporal memoization modules on every FPU.
    #[default]
    Memoized,
    /// The baseline resilient architecture alone (EDS + ECU recovery, no
    /// memoization hardware and none of its energy).
    Baseline,
    /// *Spatial* memoization (Rahimi et al., TCAS-II 2013 — the paper's
    /// reference \[20\]): within each sub-wavefront slot, the first lane
    /// to execute a distinct operand set broadcasts its result to the
    /// other 15 concurrent lanes, which reuse it when their operands
    /// match. No per-FPU FIFO — reuse is purely intra-instruction, which
    /// is exactly the scalability limitation the paper argues temporal
    /// memoization removes.
    Spatial,
}

/// Which execution engine drives the compute units.
///
/// Every backend produces **bit-identical** [`crate::DeviceReport`]s:
/// wavefront → CU assignment, each CU's wavefront order, and the
/// index-order merge of per-CU statistics are the same; the parallel
/// backends only overlap the (already independent) per-SC/per-CU work on
/// OS threads. See `DESIGN.md` § "Execution engine".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecBackend {
    /// One thread walks the wavefronts in dispatch order — the reference
    /// engine.
    #[default]
    Sequential,
    /// One `std::thread` worker per compute unit (scoped threads, no
    /// extra dependencies); results merge deterministically in CU index
    /// order.
    Parallel,
    /// Stream-core-level sharding *within* each compute unit on a shared
    /// work-stealing pool — the only backend that speeds up single-CU
    /// configurations. Shard journals are merged in lane order and
    /// replayed through each CU's real accounting, keeping reports
    /// bit-identical for any shard count; spatial mode falls back to
    /// [`ExecBackend::Parallel`]. See [`crate::IntraCuEngine`].
    IntraCu,
}

impl ExecBackend {
    /// A stable lowercase label for traces, benchmark records and CLI
    /// output (`"sequential"`, `"parallel"`, `"intra-cu"`).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::Sequential => "sequential",
            Self::Parallel => "parallel",
            Self::IntraCu => "intra-cu",
        }
    }
}

/// Where per-instruction timing-error events come from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorMode {
    /// A fixed per-instruction error rate (the Fig. 10 sweep, 0–4 %).
    FixedRate(f64),
    /// A fixed per-*stage* violation rate: the per-instruction rate then
    /// grows with pipeline depth (`1 − (1 − p)^stages`, see
    /// [`tm_timing::EdsChain`]), so the 16-stage RECIP errs roughly 4×
    /// as often as the 4-stage units — the depth effect §1 of the paper
    /// highlights.
    PerStageRate(f64),
    /// The rate implied by the FPU supply voltage through the
    /// [`VoltageModel`] (the Fig. 11 voltage-overscaling sweep).
    FromVoltage,
}

impl Default for ErrorMode {
    /// Error-free operation.
    fn default() -> Self {
        ErrorMode::FixedRate(0.0)
    }
}

/// Why a [`DeviceConfigBuilder::build`] (or [`DeviceConfig::check`])
/// rejected a configuration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `compute_units == 0`.
    NoComputeUnits,
    /// `stream_cores_per_cu == 0`.
    NoStreamCores,
    /// The wavefront size is not a positive multiple of the SC count.
    RaggedWavefront {
        /// Configured wavefront size.
        wavefront: usize,
        /// Configured stream cores per CU.
        stream_cores: usize,
    },
    /// `fifo_depth == 0`.
    ZeroFifoDepth,
    /// The effective per-instruction error rate is not a probability.
    ErrorRateOutOfRange {
        /// The offending effective rate.
        rate: f64,
    },
    /// `vdd <= 0`.
    NonPositiveVdd {
        /// The offending supply voltage.
        vdd: f64,
    },
    /// `metrics_window == Some(0)`.
    ZeroMetricsWindow,
    /// A pinned intra-CU shard count outside `1..=stream_cores_per_cu`.
    ShardsOutOfRange {
        /// The pinned shard count.
        shards: usize,
        /// Configured stream cores per CU.
        stream_cores: usize,
    },
    /// [`ExecBackend::IntraCu`] with [`ArchMode::Spatial`]: spatial
    /// memoization couples lanes within a sub-wavefront slot, so the
    /// engine would silently fall back to [`ExecBackend::Parallel`].
    SpatialIntraCu,
    /// A pinned intra-CU shard count with approximate matching: the
    /// kernel path cannot honor the pin (approximate value reuse couples
    /// lanes, so it falls back to [`ExecBackend::Parallel`]). Leave the
    /// shard count unpinned (plain [`ExecBackend::IntraCu`]) instead.
    PinnedShardsNeedExactMatching,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NoComputeUnits => write!(f, "need at least one compute unit"),
            Self::NoStreamCores => write!(f, "need at least one stream core"),
            Self::RaggedWavefront {
                wavefront,
                stream_cores,
            } => write!(
                f,
                "wavefront size {wavefront} must be a positive multiple of the SC count {stream_cores}"
            ),
            Self::ZeroFifoDepth => write!(f, "FIFO depth must be at least 1"),
            Self::ErrorRateOutOfRange { rate } => write!(f, "error rate {rate} out of range"),
            Self::NonPositiveVdd { vdd } => write!(f, "vdd must be positive, got {vdd}"),
            Self::ZeroMetricsWindow => write!(f, "metrics window width must be non-zero"),
            Self::ShardsOutOfRange {
                shards,
                stream_cores,
            } => write!(
                f,
                "intra-CU shard count {shards} out of range 1..={stream_cores}"
            ),
            Self::SpatialIntraCu => write!(
                f,
                "the intra-CU backend cannot shard spatial memoization; use the parallel backend"
            ),
            Self::PinnedShardsNeedExactMatching => write!(
                f,
                "a pinned intra-CU shard count requires exact matching; leave the shard count unpinned with approximate policies"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of a simulated device.
///
/// The defaults model a single Radeon HD 5870 compute-unit pair with the
/// paper's design point: 2-entry FIFOs, exact matching, the 12-cycle
/// baseline recovery, nominal 0.9 V, no injected errors, the uniform
/// error model. Experiments override fields through the validated
/// [`DeviceConfig::builder`] (or [`DeviceConfig::rebuild`] to derive a
/// variant) — the single sanctioned construction path.
///
/// # Examples
///
/// ```
/// use tm_sim::{ArchMode, DeviceConfig, ErrorMode};
/// use tm_core::MatchPolicy;
///
/// let config = DeviceConfig::builder()
///     .with_policy(MatchPolicy::threshold(0.5))
///     .with_error_mode(ErrorMode::FixedRate(0.02))
///     .with_seed(7)
///     .build()
///     .unwrap();
/// assert_eq!(config.stream_cores_per_cu, 16);
/// assert_eq!(config.arch, ArchMode::Memoized);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceConfig {
    /// Number of compute units (the HD 5870 has 20; experiments default to
    /// 2 for simulation speed — hit rates are per-FPU properties and do not
    /// depend on the CU count).
    pub compute_units: usize,
    /// Stream cores (SIMD lanes) per compute unit.
    pub stream_cores_per_cu: usize,
    /// Work-items per wavefront.
    pub wavefront_size: usize,
    /// Architecture variant.
    pub arch: ArchMode,
    /// Memoization FIFO depth (the paper settles on 2).
    pub fifo_depth: usize,
    /// FIFO replacement policy (FIFO in the paper; LRU for ablation).
    pub replacement: Replacement,
    /// The matching constraint programmed into every module's MMIO window.
    pub policy: MatchPolicy,
    /// Baseline recovery mechanism.
    pub recovery: RecoveryPolicy,
    /// Timing-error source.
    pub error_mode: ErrorMode,
    /// How the error source is distributed across stream cores (uniform,
    /// heterogeneous corners, voltage-coupled, bursty); see
    /// [`tm_timing::ErrorModelSpec`].
    pub error_model: ErrorModelSpec,
    /// FPU supply voltage (the memo module always stays at nominal).
    pub vdd: f64,
    /// Voltage/error/energy scaling model.
    pub voltage_model: VoltageModel,
    /// Energy constants.
    pub energy_model: EnergyModel,
    /// PRNG seed for error injection.
    pub seed: u64,
    /// Per-compute-unit instruction-trace capacity (`0` disables tracing;
    /// see [`crate::TraceEvent`] and [`crate::locality`]).
    pub trace_depth: usize,
    /// Optional adaptive power gating of every memoization module (the
    /// automated form of the paper's software-controlled power gating).
    pub adaptive_gate: Option<GatePolicy>,
    /// Which execution engine drives the compute units.
    pub backend: ExecBackend,
    /// Fixed shard count per compute unit for [`ExecBackend::IntraCu`]
    /// (`None` picks it from the host's available parallelism). Results
    /// are shard-count-invariant; pinning exists for tests and
    /// benchmarks.
    pub intra_cu_shards: Option<usize>,
    /// Enables online value-locality profiling (a
    /// [`crate::sink::LocalitySink`] per compute unit) — the streaming
    /// alternative to recording a bounded trace and post-processing it
    /// with [`crate::locality`].
    pub locality_tracking: bool,
    /// Initial cycle-window width for time-resolved metrics (`None`
    /// disables the [`crate::sink::MetricsSink`]). When set, every
    /// compute unit folds its event stream into per-window series — hit
    /// rate, masked errors, recoveries, energy — per opcode and in total;
    /// see [`crate::ComputeUnit::metrics`].
    pub metrics_window: Option<u64>,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            compute_units: 2,
            stream_cores_per_cu: 16,
            wavefront_size: 64,
            arch: ArchMode::Memoized,
            fifo_depth: DEFAULT_FIFO_DEPTH,
            replacement: Replacement::Fifo,
            policy: MatchPolicy::Exact,
            recovery: RecoveryPolicy::default(),
            error_mode: ErrorMode::default(),
            error_model: ErrorModelSpec::Uniform,
            vdd: NOMINAL_VDD,
            voltage_model: VoltageModel::tsmc45(),
            energy_model: EnergyModel::tsmc45(),
            seed: 0xC0FFEE,
            trace_depth: 0,
            adaptive_gate: None,
            backend: ExecBackend::default(),
            intra_cu_shards: None,
            locality_tracking: false,
            metrics_window: None,
        }
    }
}

impl DeviceConfig {
    /// The full Radeon HD 5870 geometry (20 compute units).
    #[must_use]
    pub fn radeon_hd_5870() -> Self {
        Self {
            compute_units: 20,
            ..Self::default()
        }
    }

    /// Starts a validated builder from the paper's default design point.
    pub fn builder() -> DeviceConfigBuilder {
        DeviceConfigBuilder {
            config: Self::default(),
        }
    }

    /// Re-opens this configuration as a builder — the sanctioned way to
    /// derive a variant (sweep points, backend swaps) from an existing
    /// config and re-validate the result.
    pub fn rebuild(self) -> DeviceConfigBuilder {
        DeviceConfigBuilder { config: self }
    }

    /// The per-instruction error rate this configuration induces for a
    /// standard 4-stage unit.
    #[must_use]
    pub fn effective_error_rate(&self) -> f64 {
        self.effective_error_rate_for_stages(4)
    }

    /// The per-instruction error rate for a unit of the given pipeline
    /// depth.
    #[must_use]
    pub fn effective_error_rate_for_stages(&self, stages: u32) -> f64 {
        match self.error_mode {
            ErrorMode::FixedRate(r) => r,
            ErrorMode::PerStageRate(p) => {
                tm_timing::EdsChain::new(stages).instruction_error_rate(p)
            }
            ErrorMode::FromVoltage => self.voltage_model.error_rate(self.vdd),
        }
    }

    /// Dynamic-energy scale of the FPU at the configured supply.
    #[must_use]
    pub fn dynamic_scale(&self) -> f64 {
        self.voltage_model.dynamic_energy_scale(self.vdd)
    }

    /// Checks internal consistency, returning the first violation.
    ///
    /// This is the non-panicking core shared by [`DeviceConfig::validate`]
    /// and [`DeviceConfigBuilder::build`] (which adds stricter
    /// cross-field rules on top).
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.compute_units == 0 {
            return Err(ConfigError::NoComputeUnits);
        }
        if self.stream_cores_per_cu == 0 {
            return Err(ConfigError::NoStreamCores);
        }
        if self.wavefront_size == 0 || !self.wavefront_size.is_multiple_of(self.stream_cores_per_cu)
        {
            return Err(ConfigError::RaggedWavefront {
                wavefront: self.wavefront_size,
                stream_cores: self.stream_cores_per_cu,
            });
        }
        if self.fifo_depth == 0 {
            return Err(ConfigError::ZeroFifoDepth);
        }
        let rate = self.effective_error_rate();
        if !(0.0..=1.0).contains(&rate) {
            return Err(ConfigError::ErrorRateOutOfRange { rate });
        }
        if self.vdd <= 0.0 {
            return Err(ConfigError::NonPositiveVdd { vdd: self.vdd });
        }
        if self.metrics_window == Some(0) {
            return Err(ConfigError::ZeroMetricsWindow);
        }
        Ok(())
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical geometry (zero CUs/SCs, a wavefront that is
    /// not a positive multiple of the SC count) or an out-of-range error
    /// rate. Prefer [`DeviceConfig::builder`], whose
    /// [`DeviceConfigBuilder::build`] reports the same problems (and
    /// stricter cross-field ones) as a [`ConfigError`] instead.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }

    /// Sub-wavefront slots per vector instruction
    /// (`wavefront_size / stream_cores_per_cu`, 4 on Evergreen).
    #[must_use]
    pub fn subwavefront_slots(&self) -> usize {
        self.wavefront_size / self.stream_cores_per_cu
    }
}

/// Validated builder for [`DeviceConfig`].
///
/// Obtained from [`DeviceConfig::builder`] (paper defaults) or
/// [`DeviceConfig::rebuild`] (derive a variant from an existing config).
/// [`DeviceConfigBuilder::build`] rejects inconsistent combinations —
/// out-of-range shard pins, spatial memoization under the intra-CU
/// backend, pinned shards with approximate matching — that unvalidated
/// field edits would silently paper over with run-time fallbacks.
///
/// # Examples
///
/// ```
/// use tm_sim::{DeviceConfig, ConfigError, ExecBackend, ArchMode};
///
/// let err = DeviceConfig::builder()
///     .with_arch(ArchMode::Spatial)
///     .with_intra_cu()
///     .build()
///     .unwrap_err();
/// assert_eq!(err, ConfigError::SpatialIntraCu);
/// ```
#[derive(Debug, Clone)]
#[must_use = "a builder does nothing until `.build()` is called"]
pub struct DeviceConfigBuilder {
    config: DeviceConfig,
}

impl DeviceConfigBuilder {
    /// Sets the matching policy.
    pub fn with_policy(mut self, policy: MatchPolicy) -> Self {
        self.config.policy = policy;
        self
    }

    /// Sets the architecture variant.
    pub fn with_arch(mut self, arch: ArchMode) -> Self {
        self.config.arch = arch;
        self
    }

    /// Sets the FIFO depth.
    pub fn with_fifo_depth(mut self, depth: usize) -> Self {
        self.config.fifo_depth = depth;
        self
    }

    /// Sets the replacement policy.
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        self.config.replacement = replacement;
        self
    }

    /// Sets the timing-error source.
    pub fn with_error_mode(mut self, mode: ErrorMode) -> Self {
        self.config.error_mode = mode;
        self
    }

    /// Sets how the error source is distributed across stream cores.
    pub fn with_error_model(mut self, model: ErrorModelSpec) -> Self {
        self.config.error_model = model;
        self
    }

    /// Sets the recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.config.recovery = recovery;
        self
    }

    /// Sets the FPU supply voltage (VOS experiments).
    pub fn with_vdd(mut self, vdd: f64) -> Self {
        self.config.vdd = vdd;
        self
    }

    /// Sets the error-injection seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the number of compute units.
    pub fn with_compute_units(mut self, n: usize) -> Self {
        self.config.compute_units = n;
        self
    }

    /// Sets the stream-core count per compute unit.
    pub fn with_stream_cores_per_cu(mut self, n: usize) -> Self {
        self.config.stream_cores_per_cu = n;
        self
    }

    /// Sets the wavefront size (must end up a positive multiple of the
    /// stream-core count).
    pub fn with_wavefront_size(mut self, n: usize) -> Self {
        self.config.wavefront_size = n;
        self
    }

    /// Enables instruction tracing with the given per-CU capacity.
    pub fn with_trace_depth(mut self, depth: usize) -> Self {
        self.config.trace_depth = depth;
        self
    }

    /// Enables adaptive power gating of the memoization modules.
    pub fn with_adaptive_gate(mut self, policy: GatePolicy) -> Self {
        self.config.adaptive_gate = Some(policy);
        self
    }

    /// Selects the execution engine.
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.config.backend = backend;
        self
    }

    /// Shorthand for [`DeviceConfigBuilder::with_backend`] with
    /// [`ExecBackend::Parallel`] — one worker thread per compute unit.
    pub fn with_parallel(self) -> Self {
        self.with_backend(ExecBackend::Parallel)
    }

    /// Shorthand for [`DeviceConfigBuilder::with_backend`] with
    /// [`ExecBackend::IntraCu`] — stream-core-level sharding within each
    /// compute unit.
    pub fn with_intra_cu(self) -> Self {
        self.with_backend(ExecBackend::IntraCu)
    }

    /// Selects the intra-CU backend with a pinned shard count per
    /// compute unit (validated against `1..=stream_cores_per_cu` at
    /// build time).
    pub fn with_intra_cu_shards(mut self, shards: usize) -> Self {
        self.config.intra_cu_shards = Some(shards);
        self.with_backend(ExecBackend::IntraCu)
    }

    /// Enables online value-locality profiling.
    pub fn with_locality_tracking(mut self) -> Self {
        self.config.locality_tracking = true;
        self
    }

    /// Enables time-windowed metrics with the given initial window width
    /// in cycles (see [`crate::sink::MetricsSink`]).
    pub fn with_metrics_window(mut self, cycles: u64) -> Self {
        self.config.metrics_window = Some(cycles);
        self
    }

    /// Validates and returns the finished configuration.
    ///
    /// # Errors
    ///
    /// Everything [`DeviceConfig::check`] rejects, plus the cross-field
    /// rules: a pinned shard count outside `1..=stream_cores_per_cu`
    /// ([`ConfigError::ShardsOutOfRange`]), the intra-CU backend under
    /// spatial memoization ([`ConfigError::SpatialIntraCu`]), and a
    /// pinned shard count with approximate matching
    /// ([`ConfigError::PinnedShardsNeedExactMatching`]).
    pub fn build(self) -> Result<DeviceConfig, ConfigError> {
        let c = self.config;
        c.check()?;
        if let Some(shards) = c.intra_cu_shards {
            if shards == 0 || shards > c.stream_cores_per_cu {
                return Err(ConfigError::ShardsOutOfRange {
                    shards,
                    stream_cores: c.stream_cores_per_cu,
                });
            }
            if !matches!(c.policy, MatchPolicy::Exact) {
                return Err(ConfigError::PinnedShardsNeedExactMatching);
            }
        }
        if c.backend == ExecBackend::IntraCu && c.arch == ArchMode::Spatial {
            return Err(ConfigError::SpatialIntraCu);
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_timing::HeterogeneousErrors;

    #[test]
    fn default_matches_paper_design_point() {
        let c = DeviceConfig::default();
        c.validate();
        assert_eq!(c.fifo_depth, 2);
        assert_eq!(c.subwavefront_slots(), 4);
        assert_eq!(c.effective_error_rate(), 0.0);
        assert_eq!(c.error_model, ErrorModelSpec::Uniform);
        assert!((c.dynamic_scale() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn radeon_geometry() {
        let c = DeviceConfig::radeon_hd_5870();
        assert_eq!(c.compute_units, 20);
        assert_eq!(c.stream_cores_per_cu, 16);
        assert_eq!(c.wavefront_size, 64);
    }

    #[test]
    fn voltage_mode_derives_rate() {
        let c = DeviceConfig::builder()
            .with_error_mode(ErrorMode::FromVoltage)
            .with_vdd(0.80)
            .build()
            .unwrap();
        assert!(c.effective_error_rate() > 0.2);
        assert!(c.dynamic_scale() < 0.8);
    }

    #[test]
    #[should_panic(expected = "multiple of the SC count")]
    fn validate_rejects_ragged_wavefront() {
        let c = DeviceConfig {
            wavefront_size: 63,
            ..DeviceConfig::default()
        };
        c.validate();
    }

    #[test]
    fn builders_chain() {
        let c = DeviceConfig::builder()
            .with_fifo_depth(8)
            .with_seed(1)
            .with_compute_units(1)
            .with_arch(ArchMode::Baseline)
            .with_error_model(ErrorModelSpec::Heterogeneous(
                HeterogeneousErrors::quartile_corners(),
            ))
            .build()
            .unwrap();
        assert_eq!(c.fifo_depth, 8);
        assert_eq!(c.arch, ArchMode::Baseline);
        assert_eq!(c.error_model.name(), "heterogeneous");
    }

    #[test]
    fn backend_defaults_to_sequential() {
        let c = DeviceConfig::default();
        assert_eq!(c.backend, ExecBackend::Sequential);
        assert!(!c.locality_tracking);
        let c = c.rebuild().with_parallel().with_locality_tracking().build().unwrap();
        assert_eq!(c.backend, ExecBackend::Parallel);
        assert!(c.locality_tracking);
    }

    #[test]
    fn build_rejects_geometry_errors_as_values() {
        assert_eq!(
            DeviceConfig::builder().with_compute_units(0).build(),
            Err(ConfigError::NoComputeUnits)
        );
        assert_eq!(
            DeviceConfig::builder().with_stream_cores_per_cu(0).build(),
            Err(ConfigError::NoStreamCores)
        );
        assert_eq!(
            DeviceConfig::builder().with_wavefront_size(63).build(),
            Err(ConfigError::RaggedWavefront {
                wavefront: 63,
                stream_cores: 16
            })
        );
        assert_eq!(
            DeviceConfig::builder().with_fifo_depth(0).build(),
            Err(ConfigError::ZeroFifoDepth)
        );
        assert_eq!(
            DeviceConfig::builder()
                .with_error_mode(ErrorMode::FixedRate(1.5))
                .build(),
            Err(ConfigError::ErrorRateOutOfRange { rate: 1.5 })
        );
        assert_eq!(
            DeviceConfig::builder().with_vdd(-0.1).build(),
            Err(ConfigError::NonPositiveVdd { vdd: -0.1 })
        );
        assert_eq!(
            DeviceConfig::builder().with_metrics_window(0).build(),
            Err(ConfigError::ZeroMetricsWindow)
        );
    }

    #[test]
    fn build_rejects_inconsistent_shard_pins() {
        // More shards than stream cores: the pin cannot be honored.
        let err = DeviceConfig::builder()
            .with_intra_cu_shards(17)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::ShardsOutOfRange {
                shards: 17,
                stream_cores: 16
            }
        );
        assert_eq!(
            DeviceConfig::builder().with_intra_cu_shards(0).build(),
            Err(ConfigError::ShardsOutOfRange {
                shards: 0,
                stream_cores: 16
            })
        );
        // Pinned shards + approximate matching: the kernel path would
        // silently fall back to the parallel backend.
        let err = DeviceConfig::builder()
            .with_policy(MatchPolicy::threshold(0.5))
            .with_intra_cu_shards(4)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::PinnedShardsNeedExactMatching);
        // The unpinned intra-CU backend with approximate matching is
        // fine — IR programs shard under any policy.
        let ok = DeviceConfig::builder()
            .with_policy(MatchPolicy::threshold(0.5))
            .with_intra_cu()
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn build_rejects_spatial_intra_cu() {
        let err = DeviceConfig::builder()
            .with_arch(ArchMode::Spatial)
            .with_intra_cu()
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::SpatialIntraCu);
        assert!(err.to_string().contains("spatial"));
    }

    #[test]
    fn rebuild_preserves_and_revalidates() {
        let base = DeviceConfig::builder().with_seed(9).build().unwrap();
        let derived = base
            .clone()
            .rebuild()
            .with_backend(ExecBackend::Parallel)
            .build()
            .unwrap();
        assert_eq!(derived.seed, 9);
        assert_eq!(derived.backend, ExecBackend::Parallel);
        // Re-opening lets strict rules catch later edits too.
        let err = base.rebuild().with_intra_cu_shards(99).build().unwrap_err();
        assert!(matches!(err, ConfigError::ShardsOutOfRange { .. }));
    }

    #[test]
    fn config_error_displays_and_is_error() {
        let e: Box<dyn std::error::Error> = Box::new(ConfigError::ZeroFifoDepth);
        assert_eq!(e.to_string(), "FIFO depth must be at least 1");
    }

}
