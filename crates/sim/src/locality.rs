//! Value-locality analysis over instruction traces.
//!
//! Quantifies the paper's §1 observation — "the entropy of data-level
//! parallelism is low due to high locality of values" — from a recorded
//! [`crate::TraceEvent`] stream:
//!
//! - [`operand_entropy_bits`]: the Shannon entropy of the operand-set
//!   distribution. 32-bit operands could carry up to 32·arity bits; real
//!   data-parallel streams carry far fewer.
//! - [`StackDistanceProfile`]: LRU stack distances of each per-(stream
//!   core, opcode) operand stream. The CDF at depth *d* is the hit rate an
//!   LRU table of *d* entries would achieve — the analytical twin of the
//!   §4.1 FIFO-depth sweep.

use crate::trace::TraceEvent;
use std::collections::HashMap;
use tm_fpu::FpOp;

/// Bit-exact key of an operand set: raw bit patterns plus arity.
pub(crate) type OperandKey = ([u32; tm_fpu::MAX_ARITY], usize);

/// Shannon entropy (bits) of the operand-set distribution of `events`.
///
/// Returns `0.0` for an empty stream. Operand sets are compared
/// bit-exactly, matching the exact-matching constraint.
///
/// # Examples
///
/// ```
/// use tm_sim::locality::operand_entropy_bits;
/// use tm_sim::TraceEvent;
/// use tm_fpu::{FpOp, Operands};
///
/// let mk = |v: f32| TraceEvent {
///     op: FpOp::Sqrt,
///     operands: Operands::unary(v),
///     result: v.sqrt(),
///     hit: false,
///     error: false,
///     stream_core: 0,
///     lane: 0,
///     cycle: 0,
/// };
/// // Two equiprobable operand sets: exactly one bit of entropy.
/// let events = vec![mk(1.0), mk(2.0), mk(1.0), mk(2.0)];
/// let h = operand_entropy_bits(events.iter());
/// assert!((h - 1.0).abs() < 1e-12);
/// ```
pub fn operand_entropy_bits<'a>(events: impl Iterator<Item = &'a TraceEvent>) -> f64 {
    let mut counts: HashMap<(FpOp, OperandKey), u64> = HashMap::new();
    let mut total = 0u64;
    for e in events {
        *counts
            .entry((e.op, (e.operands.bits(), e.operands.arity())))
            .or_default() += 1;
        total += 1;
    }
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// LRU stack-distance profile of per-FPU operand streams.
///
/// Distance *k* means the operand set recurred with *k* distinct operand
/// sets seen on that FPU in between; `cold` counts first occurrences.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StackDistanceProfile {
    /// `histogram[k]` = number of accesses with stack distance `k`.
    pub histogram: Vec<u64>,
    /// First-touch (compulsory miss) count.
    pub cold: u64,
    /// Total accesses profiled.
    pub total: u64,
}

impl StackDistanceProfile {
    /// Builds the profile, treating each `(stream core, opcode)` pair as
    /// an independent stream — the granularity of the paper's private
    /// per-FPU FIFOs.
    pub fn from_events<'a>(events: impl Iterator<Item = &'a TraceEvent>) -> Self {
        // Per-stream LRU stacks of operand keys.
        let mut stacks: HashMap<(usize, FpOp), Vec<OperandKey>> = HashMap::new();
        let mut profile = StackDistanceProfile::default();
        for e in events {
            let key = (e.operands.bits(), e.operands.arity());
            let stack = stacks.entry((e.stream_core, e.op)).or_default();
            profile.total += 1;
            match stack.iter().position(|k| *k == key) {
                Some(pos) => {
                    let distance = stack.len() - 1 - pos;
                    if profile.histogram.len() <= distance {
                        profile.histogram.resize(distance + 1, 0);
                    }
                    profile.histogram[distance] += 1;
                    let k = stack.remove(pos);
                    stack.push(k);
                }
                None => {
                    profile.cold += 1;
                    stack.push(key);
                    // Bound the stack so pathological streams stay cheap;
                    // distances beyond 1024 are indistinguishable from cold
                    // for any realistic LUT.
                    if stack.len() > 1024 {
                        stack.remove(0);
                    }
                }
            }
        }
        profile
    }

    /// Hit rate an LRU table of `depth` entries would achieve on this
    /// stream (the CDF of the distance histogram).
    ///
    /// # Examples
    ///
    /// ```
    /// use tm_sim::locality::StackDistanceProfile;
    ///
    /// let p = StackDistanceProfile {
    ///     histogram: vec![60, 20, 10],
    ///     cold: 10,
    ///     total: 100,
    /// };
    /// assert_eq!(p.hit_rate_at_depth(1), 0.60);
    /// assert_eq!(p.hit_rate_at_depth(2), 0.80);
    /// assert_eq!(p.hit_rate_at_depth(64), 0.90);
    /// ```
    #[must_use]
    pub fn hit_rate_at_depth(&self, depth: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = self.histogram.iter().take(depth).sum();
        hits as f64 / self.total as f64
    }

    /// Fraction of accesses that were first touches.
    #[must_use]
    pub fn cold_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.cold as f64 / self.total as f64
        }
    }
}

/// Summary row of a locality analysis: one opcode's stream statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalitySummary {
    /// The opcode.
    pub op: FpOp,
    /// Events analysed.
    pub events: u64,
    /// Operand-set entropy, bits.
    pub entropy_bits: f64,
    /// Entropy of a uniform stream over the same support (upper bound).
    pub max_entropy_bits: f64,
    /// Predicted LRU hit rates at depths 2, 4, 16, 64.
    pub predicted_hit_rates: [f64; 4],
}

/// Per-opcode locality summaries over a trace.
pub fn summarize<'a>(events: impl Iterator<Item = &'a TraceEvent> + Clone) -> Vec<LocalitySummary> {
    let mut ops: Vec<FpOp> = events.clone().map(|e| e.op).collect();
    ops.sort_unstable();
    ops.dedup();
    ops.into_iter()
        .map(|op| {
            let stream = events.clone().filter(move |e| e.op == op);
            let n = stream.clone().count() as u64;
            let entropy = operand_entropy_bits(stream.clone());
            let mut distinct: Vec<OperandKey> = stream
                .clone()
                .map(|e| (e.operands.bits(), e.operands.arity()))
                .collect();
            distinct.sort_unstable();
            distinct.dedup();
            let profile = StackDistanceProfile::from_events(stream);
            LocalitySummary {
                op,
                events: n,
                entropy_bits: entropy,
                max_entropy_bits: (distinct.len() as f64).log2().max(0.0),
                predicted_hit_rates: [
                    profile.hit_rate_at_depth(2),
                    profile.hit_rate_at_depth(4),
                    profile.hit_rate_at_depth(16),
                    profile.hit_rate_at_depth(64),
                ],
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_fpu::Operands;

    fn mk(op: FpOp, v: f32, sc: usize) -> TraceEvent {
        TraceEvent {
            op,
            operands: Operands::unary(v),
            result: v,
            hit: false,
            error: false,
            stream_core: sc,
            lane: 0,
            cycle: 0,
        }
    }

    #[test]
    fn entropy_of_constant_stream_is_zero() {
        let events: Vec<_> = (0..32).map(|_| mk(FpOp::Sqrt, 2.0, 0)).collect();
        assert_eq!(operand_entropy_bits(events.iter()), 0.0);
    }

    #[test]
    fn entropy_of_uniform_stream_is_log2_n() {
        let events: Vec<_> = (0..64).map(|i| mk(FpOp::Sqrt, i as f32, 0)).collect();
        assert!((operand_entropy_bits(events.iter()) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn stack_distance_of_alternating_pair() {
        // A B A B A B… distance 1 after warmup.
        let events: Vec<_> = (0..20)
            .map(|i| mk(FpOp::Add, if i % 2 == 0 { 1.0 } else { 2.0 }, 0))
            .collect();
        let p = StackDistanceProfile::from_events(events.iter());
        assert_eq!(p.cold, 2);
        assert_eq!(p.hit_rate_at_depth(2), 18.0 / 20.0);
        assert_eq!(p.hit_rate_at_depth(1), 0.0);
    }

    #[test]
    fn streams_are_separated_by_stream_core() {
        // Same value on two SCs: each stream has its own cold miss.
        let events = [mk(FpOp::Add, 1.0, 0), mk(FpOp::Add, 1.0, 1)];
        let p = StackDistanceProfile::from_events(events.iter());
        assert_eq!(p.cold, 2);
    }

    #[test]
    fn deeper_tables_never_hit_less() {
        let events: Vec<_> = (0..200)
            .map(|i| mk(FpOp::Mul, (i % 7) as f32, i % 3))
            .collect();
        let p = StackDistanceProfile::from_events(events.iter());
        let mut prev = 0.0;
        for d in [1, 2, 4, 8, 16, 64] {
            let r = p.hit_rate_at_depth(d);
            assert!(r >= prev);
            prev = r;
        }
        assert!((p.cold_fraction() - 21.0 / 200.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_groups_by_op() {
        let mut events: Vec<_> = (0..16).map(|_| mk(FpOp::Sqrt, 1.0, 0)).collect();
        events.extend((0..16).map(|i| mk(FpOp::Add, i as f32, 0)));
        let rows = summarize(events.iter());
        assert_eq!(rows.len(), 2);
        let sqrt = rows.iter().find(|r| r.op == FpOp::Sqrt).unwrap();
        let add = rows.iter().find(|r| r.op == FpOp::Add).unwrap();
        assert!(sqrt.entropy_bits < add.entropy_bits);
        assert!(sqrt.predicted_hit_rates[0] > add.predicted_hit_rates[0]);
    }
}
