//! Post-run reports.

use std::fmt;
use tm_core::MemoStats;
use tm_energy::EnergyBreakdown;
use tm_fpu::FpOp;

/// Per-opcode results of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpReport {
    /// The opcode.
    pub op: FpOp,
    /// Aggregated memoization statistics across every FPU of this type.
    pub stats: MemoStats,
    /// Lane-level instructions executed.
    pub lane_instructions: u64,
    /// Energy attributed to this opcode, pJ.
    pub energy_pj: f64,
}

impl OpReport {
    /// Hit rate of this opcode's FIFOs.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        self.stats.hit_rate()
    }
}

/// The full result of a device run: the raw material of every table and
/// figure in the paper's evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceReport {
    /// One entry per *activated* opcode (ops that executed at least once),
    /// in [`tm_fpu::ALL_OPS`] order.
    pub per_op: Vec<OpReport>,
    /// Energy breakdown across the device.
    pub energy: EnergyBreakdown,
    /// Cycles of the busiest compute unit (wall-clock proxy).
    pub cycles_max: u64,
    /// Summed cycles across compute units.
    pub cycles_total: u64,
    /// ECU baseline recoveries performed.
    pub recoveries: u64,
    /// Cycles stalled in ECU recovery, summed across compute units —
    /// the campaign runner's "recovery cycles" metric.
    pub recovery_stall_cycles: u64,
    /// Timing violations injected.
    pub errors_injected: u64,
    /// Wavefronts dispatched.
    pub wavefronts: u64,
    /// Lane instructions satisfied by spatial (cross-lane) reuse — only
    /// non-zero under [`crate::ArchMode::Spatial`].
    pub spatial_hits: u64,
    /// Timing errors masked by spatial reuse.
    pub spatial_masked_errors: u64,
}

impl DeviceReport {
    /// The report entry for `op`, if it was activated.
    #[must_use]
    pub fn op(&self, op: FpOp) -> Option<&OpReport> {
        self.per_op.iter().find(|r| r.op == op)
    }

    /// Total lane-level FP instructions executed.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.per_op.iter().map(|r| r.lane_instructions).sum()
    }

    /// The lookup-weighted average hit rate over the activated FPUs — the
    /// "weighted average hit rate of the activated FPUs" of Fig. 8.
    #[must_use]
    pub fn weighted_hit_rate(&self) -> f64 {
        let (hits, lookups) = self.per_op.iter().fold((0u64, 0u64), |(h, l), r| {
            (h + r.stats.hits, l + r.stats.lookups)
        });
        if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        }
    }

    /// Total energy in picojoules.
    #[must_use]
    pub fn total_energy_pj(&self) -> f64 {
        self.energy.total_pj()
    }

    /// Energy of the opcodes inside the paper's evaluation scope — "the
    /// six frequently exercised functional units: ADD, MUL, SQRT, RECIP,
    /// MULADD, FP2INT" (§5.1; `SUB` folds into the ADD unit). This is the
    /// quantity Figs. 10 and 11 compare.
    #[must_use]
    pub fn scoped_energy_pj(&self) -> f64 {
        self.per_op
            .iter()
            .filter(|r| r.op.in_paper_scope())
            .map(|r| r.energy_pj)
            .sum()
    }

    /// Fraction of lane instructions satisfied by spatial reuse.
    #[must_use]
    pub fn spatial_hit_rate(&self) -> f64 {
        let total = self.total_instructions();
        if total == 0 {
            0.0
        } else {
            self.spatial_hits as f64 / total as f64
        }
    }

    /// Aggregated memoization statistics across all opcodes.
    #[must_use]
    pub fn total_stats(&self) -> MemoStats {
        self.per_op.iter().map(|r| r.stats).sum()
    }
}

impl fmt::Display for DeviceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "device report: {} instructions, {} wavefronts, {} cycles (max CU), {:.1} pJ",
            self.total_instructions(),
            self.wavefronts,
            self.cycles_max,
            self.total_energy_pj()
        )?;
        writeln!(
            f,
            "  weighted hit rate {:.1}%, {} errors injected, {} recoveries",
            self.weighted_hit_rate() * 100.0,
            self.errors_injected,
            self.recoveries
        )?;
        for r in &self.per_op {
            writeln!(
                f,
                "  {:<7} {:>10} instr  hit {:>5.1}%  masked {:>6}  recovered {:>6}",
                r.op.mnemonic(),
                r.lane_instructions,
                r.hit_rate() * 100.0,
                r.stats.masked_errors,
                r.stats.recoveries
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeviceReport {
        DeviceReport {
            per_op: vec![
                OpReport {
                    op: FpOp::Add,
                    stats: MemoStats {
                        lookups: 100,
                        hits: 50,
                        misses: 50,
                        updates: 50,
                        ..MemoStats::default()
                    },
                    lane_instructions: 100,
                    energy_pj: 500.0,
                },
                OpReport {
                    op: FpOp::Sqrt,
                    stats: MemoStats {
                        lookups: 100,
                        hits: 90,
                        misses: 10,
                        updates: 10,
                        ..MemoStats::default()
                    },
                    lane_instructions: 100,
                    energy_pj: 800.0,
                },
            ],
            energy: EnergyBreakdown::default(),
            cycles_max: 10,
            cycles_total: 20,
            recoveries: 0,
            recovery_stall_cycles: 0,
            errors_injected: 0,
            wavefronts: 2,
            spatial_hits: 0,
            spatial_masked_errors: 0,
        }
    }

    #[test]
    fn weighted_hit_rate_weights_by_lookups() {
        let r = sample();
        assert!((r.weighted_hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn lookup_by_op() {
        let r = sample();
        assert!(r.op(FpOp::Add).is_some());
        assert!(r.op(FpOp::Mul).is_none());
        assert_eq!(r.total_instructions(), 200);
    }

    #[test]
    fn display_contains_mnemonics() {
        let s = sample().to_string();
        assert!(s.contains("ADD") && s.contains("SQRT"));
    }

    #[test]
    fn empty_report_has_zero_rate() {
        let r = DeviceReport {
            per_op: vec![],
            energy: EnergyBreakdown::default(),
            cycles_max: 0,
            cycles_total: 0,
            recoveries: 0,
            recovery_stall_cycles: 0,
            errors_injected: 0,
            wavefronts: 0,
            spatial_hits: 0,
            spatial_masked_errors: 0,
        };
        assert_eq!(r.weighted_hit_rate(), 0.0);
        assert_eq!(r.total_instructions(), 0);
    }
}
