//! A warm device pool for serving layers: reuse [`Device`]s across jobs.
//!
//! A job server handling many small kernel launches cannot afford to
//! rebuild a [`Device`] (compute units, stream cores, memo FIFOs) per
//! request. [`DevicePool`] keeps finished devices on an idle list keyed
//! by their full [`DeviceConfig`] and hands them back to the next job
//! with the same configuration after a [`Device::reset_stats`].
//!
//! `reset_stats` deliberately clears *statistics* (tallies, wavefront
//! counts, hub-scoped telemetry series) but **keeps the memoization FIFO
//! contents**. A warm-reused device therefore starts with whatever
//! operand history the previous job left in its FPU FIFOs — the
//! cross-job form of the paper's temporal value locality. Callers that
//! need bit-cold results (e.g. deterministic campaigns) should build
//! their own devices; callers serving repetitive launch traffic get the
//! warm FIFOs for free. [`PoolStats`] reports how often each case
//! happened.
//!
//! The pool is synchronous and unlocked: a serving layer wraps it in its
//! own `Mutex` alongside the rest of its scheduler state.
//!
//! # Examples
//!
//! ```
//! use tm_sim::{pool::DevicePool, DeviceConfig};
//!
//! let mut pool = DevicePool::new(4);
//! let config = DeviceConfig::default();
//!
//! let device = pool.acquire(&config); // cold: freshly built
//! pool.release(device);
//! let device = pool.acquire(&config); // warm: same device, stats reset
//! assert_eq!(pool.stats().warm_hits, 1);
//! assert_eq!(pool.stats().cold_builds, 1);
//! pool.release(device);
//! ```

use crate::config::DeviceConfig;
use crate::device::Device;

/// Counters describing how the pool has served its callers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Acquisitions satisfied by resetting an idle device with a
    /// matching configuration (memo FIFOs still warm).
    pub warm_hits: u64,
    /// Acquisitions that had to construct a new device.
    pub cold_builds: u64,
    /// Devices dropped on release because the idle list was full.
    pub evictions: u64,
}

/// A bounded pool of idle [`Device`]s keyed by [`DeviceConfig`].
///
/// See the [module docs](self) for the warm-reuse semantics.
#[derive(Debug)]
pub struct DevicePool {
    idle: Vec<Device>,
    max_idle: usize,
    stats: PoolStats,
}

impl DevicePool {
    /// Creates a pool keeping at most `max_idle` idle devices.
    ///
    /// `max_idle == 0` disables reuse entirely: every acquisition is a
    /// cold build and every release drops the device.
    #[must_use]
    pub fn new(max_idle: usize) -> Self {
        Self {
            idle: Vec::new(),
            max_idle,
            stats: PoolStats::default(),
        }
    }

    /// Hands out a device for `config`.
    ///
    /// If an idle device was built from an identical configuration it is
    /// revived with [`Device::reset_stats`] — statistics and hub series
    /// cleared, memo FIFOs kept warm. Otherwise a fresh device is built.
    pub fn acquire(&mut self, config: &DeviceConfig) -> Device {
        if let Some(pos) = self.idle.iter().position(|d| d.config() == config) {
            let mut device = self.idle.swap_remove(pos);
            device.reset_stats();
            self.stats.warm_hits += 1;
            device
        } else {
            self.stats.cold_builds += 1;
            Device::new(config.clone())
        }
    }

    /// Returns a device to the idle list, evicting it if the list is at
    /// capacity. Telemetry hubs and recorders are detached first so an
    /// idle device cannot keep publishing into a finished job's scope.
    pub fn release(&mut self, mut device: Device) {
        device.detach_hub();
        device.detach_recorder();
        if self.idle.len() < self.max_idle {
            self.idle.push(device);
        } else {
            self.stats.evictions += 1;
        }
    }

    /// Number of devices currently idle.
    #[must_use]
    pub fn idle_len(&self) -> usize {
        self.idle.len()
    }

    /// Warm/cold/eviction counters since construction.
    #[must_use]
    pub const fn stats(&self) -> PoolStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    #[test]
    fn warm_reuse_matches_config_and_resets_stats() {
        let mut pool = DevicePool::new(2);
        let config = DeviceConfig::default();
        let mut d = pool.acquire(&config);
        assert_eq!(pool.stats().cold_builds, 1);
        // Leave some state behind: one launch worth of stats + FIFO fill.
        struct One;
        impl crate::Kernel for One {
            fn name(&self) -> &'static str {
                "one"
            }
            fn execute(&mut self, ctx: &mut crate::WaveCtx<'_>) {
                let x = crate::VReg::splat(ctx.lanes(), 2.0);
                let _ = ctx.mul(&x, &x);
            }
        }
        d.run(&mut One, 64);
        assert!(d.report().wavefronts > 0);
        pool.release(d);
        assert_eq!(pool.idle_len(), 1);

        let d = pool.acquire(&config);
        assert_eq!(pool.stats().warm_hits, 1);
        // Stats were reset; the device is ready for a fresh job.
        assert_eq!(d.report().wavefronts, 0);
        pool.release(d);
    }

    #[test]
    fn different_config_is_a_cold_build() {
        let mut pool = DevicePool::new(2);
        let a = DeviceConfig::default();
        let b = DeviceConfig {
            compute_units: a.compute_units + 1,
            ..a.clone()
        };
        let d = pool.acquire(&a);
        pool.release(d);
        let d = pool.acquire(&b);
        assert_eq!(pool.stats().cold_builds, 2);
        assert_eq!(pool.stats().warm_hits, 0);
        pool.release(d);
    }

    #[test]
    fn capacity_zero_always_evicts() {
        let mut pool = DevicePool::new(0);
        let config = DeviceConfig::default();
        let d = pool.acquire(&config);
        pool.release(d);
        assert_eq!(pool.idle_len(), 0);
        assert_eq!(pool.stats().evictions, 1);
        let _ = pool.acquire(&config);
        assert_eq!(pool.stats().cold_builds, 2);
    }
}
