//! The unified event/statistics pipeline of the execute stage.
//!
//! Historically every accounting concern — per-op tallies, the energy
//! ledger, the instruction trace, locality profiling — was hand-inlined
//! into [`crate::ComputeUnit::issue_vector`]. This module factors them
//! into composable [`EventSink`]s behind one [`SinkPipeline`]: the
//! execute stage *describes* what happened to each lane as a
//! [`LaneEvent`] (plus one [`VectorEvent`] per vector instruction), and
//! each installed sink folds the stream into its own statistic.
//!
//! Sinks are deliberately enum-dispatched ([`SinkKind`]) rather than
//! boxed trait objects so a [`crate::ComputeUnit`] stays `Clone` (the
//! crate forbids `unsafe` and devices are cloned by experiments).
//!
//! The accounting is bit-identical to the pre-refactor inline code: the
//! [`EnergySink`] applies the exact same per-category charge sequence
//! the Table-2 action used to apply directly, and per-op energy is
//! attributed as a ledger-total delta around each vector instruction.

use crate::config::{ArchMode, DeviceConfig};
use crate::locality::{LocalitySummary, OperandKey, StackDistanceProfile};
use crate::trace::{TraceBuffer, TraceEvent};
use std::collections::{BTreeMap, HashMap};
use tm_energy::{EnergyLedger, EnergyModel};
use tm_obs::WindowedSeries;
use tm_fpu::{FpOp, Operands, ALL_OPS};
use tm_timing::RecoveryPolicy;

/// Per-opcode execution tallies of one compute unit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpTally {
    /// Lane-level (scalar) instructions issued.
    pub lane_instructions: u64,
    /// Wavefront-level (vector) instructions issued.
    pub vector_instructions: u64,
    /// Lane instructions satisfied by *spatial* (intra-slot) reuse when
    /// the device runs in [`ArchMode::Spatial`].
    pub spatial_hits: u64,
    /// Timing errors masked by spatial reuse.
    pub spatial_masked_errors: u64,
    /// Energy attributed to this opcode's instructions, pJ.
    pub energy_pj: f64,
}

/// How one lane's instruction was satisfied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaneEventKind {
    /// The lane went through its stream core's FPU + memoization module
    /// (the Table-2 state machine); the fields are the module's verdict.
    Issue {
        /// The memoization LUT hit (FPU clock-gated).
        hit: bool,
        /// The lookup was skipped entirely (gated module).
        bypassed: bool,
        /// The miss committed a new LUT entry.
        updated: bool,
        /// A timing error forced an ECU recovery.
        recovered: bool,
    },
    /// The lane reused a concurrent lane's result via the spatial
    /// (intra-slot) comparators — only under [`ArchMode::Spatial`].
    SpatialReuse,
}

/// One lane-level instruction, as reported by the execute stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneEvent {
    /// The opcode.
    pub op: FpOp,
    /// The input operands.
    pub operands: Operands,
    /// The architecturally visible result.
    pub result: f32,
    /// Whether the EDS sensors flagged a timing violation.
    pub error: bool,
    /// Stream core index within the compute unit.
    pub stream_core: usize,
    /// Lane index within the wavefront.
    pub lane: usize,
    /// Issue cycle.
    pub cycle: u64,
    /// How the lane was satisfied.
    pub kind: LaneEventKind,
}

impl LaneEvent {
    /// Whether the lane's result came from reuse (LUT hit or spatial
    /// broadcast) rather than an FPU execution.
    #[must_use]
    pub fn is_hit(&self) -> bool {
        match self.kind {
            LaneEventKind::Issue { hit, .. } => hit,
            LaneEventKind::SpatialReuse => true,
        }
    }
}

/// One vector (wavefront-wide) instruction, emitted after its lanes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorEvent {
    /// The opcode.
    pub op: FpOp,
    /// Number of active lanes.
    pub active_lanes: u64,
    /// Lanes satisfied by spatial reuse.
    pub spatial_hits: u64,
    /// Timing errors masked by spatial reuse.
    pub spatial_masked_errors: u64,
    /// Energy charged over the course of this instruction, pJ.
    pub energy_pj: f64,
    /// Issue cycle of the instruction's first lane (`0` when the
    /// instruction had no active lanes) — what time-windowed sinks
    /// resolve the instruction against.
    pub cycle: u64,
}

/// A consumer of execute-stage events.
pub trait EventSink {
    /// Folds one lane-level instruction into the sink.
    fn on_lane(&mut self, event: &LaneEvent);
    /// Folds one vector-level instruction into the sink.
    fn on_vector(&mut self, event: &VectorEvent) {
        let _ = event;
    }
    /// Clears accumulated statistics (the per-kernel measurement
    /// boundary — sinks must not retain cross-kernel state).
    fn reset(&mut self);
}

/// Per-opcode instruction tallies.
#[derive(Debug, Clone, Default)]
pub struct StatsSink {
    tallies: BTreeMap<FpOp, OpTally>,
}

impl StatsSink {
    /// An empty tally sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated per-opcode tallies.
    #[must_use]
    pub fn tallies(&self) -> &BTreeMap<FpOp, OpTally> {
        &self.tallies
    }

    /// Mutable tally access for the snapshot restore path.
    pub(crate) fn tallies_mut(&mut self) -> &mut BTreeMap<FpOp, OpTally> {
        &mut self.tallies
    }
}

impl EventSink for StatsSink {
    fn on_lane(&mut self, _event: &LaneEvent) {}

    fn on_vector(&mut self, event: &VectorEvent) {
        let tally = self.tallies.entry(event.op).or_default();
        tally.vector_instructions += 1;
        tally.lane_instructions += event.active_lanes;
        tally.spatial_hits += event.spatial_hits;
        tally.spatial_masked_errors += event.spatial_masked_errors;
        tally.energy_pj += event.energy_pj;
    }

    fn reset(&mut self) {
        self.tallies.clear();
    }
}

/// The energy accountant: charges the ledger per the Table-2 action.
#[derive(Debug, Clone)]
pub struct EnergySink {
    ledger: EnergyLedger,
    model: EnergyModel,
    policy: RecoveryPolicy,
    scale: f64,
    spatial: bool,
}

impl EnergySink {
    /// A sink charging energy per `config`'s model, recovery policy and
    /// supply voltage.
    #[must_use]
    pub fn new(config: &DeviceConfig) -> Self {
        Self {
            ledger: EnergyLedger::new(),
            model: config.energy_model,
            policy: config.recovery,
            scale: config.dynamic_scale(),
            spatial: config.arch == ArchMode::Spatial,
        }
    }

    /// The accumulated ledger.
    #[must_use]
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Mutable ledger access for the snapshot restore path.
    pub(crate) fn ledger_mut(&mut self) -> &mut EnergyLedger {
        &mut self.ledger
    }

    /// Batched fold of one vector instruction's lane events (all sharing
    /// `op`). Charges exactly what per-event [`EventSink::on_lane`] calls
    /// would, in the same order, but computes each per-op energy quantum
    /// once per instruction instead of once per lane.
    pub fn fold_lanes(&mut self, op: FpOp, events: &[LaneEvent]) {
        if events.is_empty() {
            return;
        }
        let scale = self.scale;
        let spatial_reuse_e = self.model.spatial_reuse_energy(op, scale);
        let hit_e = self.model.hit_energy(op, scale);
        let exec_e = self.model.exec_energy(op, scale);
        let lut_lookup_e = self.model.lut_lookup_energy();
        let lut_update_e = self.model.lut_update_energy();
        let recovery_e = self.model.recovery_energy(op, self.policy, scale);
        for event in events {
            debug_assert_eq!(event.op, op, "mixed-op lane batch");
            match event.kind {
                LaneEventKind::SpatialReuse => self.ledger.charge_hit(spatial_reuse_e),
                LaneEventKind::Issue {
                    hit,
                    bypassed,
                    updated,
                    recovered,
                } => {
                    if self.spatial {
                        self.ledger.charge_lut_lookup(lut_lookup_e);
                    }
                    if hit {
                        self.ledger.charge_hit(hit_e);
                    } else {
                        self.ledger.charge_exec(exec_e);
                        if !bypassed {
                            self.ledger.charge_lut_lookup(lut_lookup_e);
                        }
                        if updated {
                            self.ledger.charge_lut_update(lut_update_e);
                        }
                        if recovered {
                            self.ledger.charge_recovery(recovery_e);
                        }
                    }
                }
            }
        }
    }
}

impl EventSink for EnergySink {
    fn on_lane(&mut self, event: &LaneEvent) {
        let (op, scale) = (event.op, self.scale);
        match event.kind {
            LaneEventKind::SpatialReuse => {
                self.ledger
                    .charge_hit(self.model.spatial_reuse_energy(op, scale));
            }
            LaneEventKind::Issue {
                hit,
                bypassed,
                updated,
                recovered,
            } => {
                if self.spatial {
                    // The executed result is broadcast for the rest of
                    // the slot; the cross-lane comparators cost about a
                    // LUT search.
                    self.ledger.charge_lut_lookup(self.model.lut_lookup_energy());
                }
                if hit {
                    self.ledger.charge_hit(self.model.hit_energy(op, scale));
                } else {
                    self.ledger.charge_exec(self.model.exec_energy(op, scale));
                    if !bypassed {
                        self.ledger.charge_lut_lookup(self.model.lut_lookup_energy());
                    }
                    if updated {
                        self.ledger.charge_lut_update(self.model.lut_update_energy());
                    }
                    if recovered {
                        self.ledger
                            .charge_recovery(self.model.recovery_energy(op, self.policy, scale));
                    }
                }
            }
        }
    }

    fn reset(&mut self) {
        self.ledger.reset();
    }
}

/// The instruction-trace recorder.
#[derive(Debug, Clone)]
pub struct TraceSink {
    buffer: TraceBuffer,
}

impl TraceSink {
    /// A sink recording up to `capacity` events (`0` disables tracing).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            buffer: TraceBuffer::new(capacity),
        }
    }

    /// The recorded trace.
    #[must_use]
    pub fn buffer(&self) -> &TraceBuffer {
        &self.buffer
    }
}

impl EventSink for TraceSink {
    fn on_lane(&mut self, event: &LaneEvent) {
        self.buffer.record(TraceEvent {
            op: event.op,
            operands: event.operands,
            result: event.result,
            hit: event.is_hit(),
            error: event.error,
            stream_core: event.stream_core,
            lane: event.lane,
            cycle: event.cycle,
        });
    }

    fn reset(&mut self) {
        self.buffer.clear();
    }
}

/// Online value-locality profiling — the streaming twin of
/// [`crate::locality::summarize`], which needs no trace buffer (and so
/// no capacity bound): entropy counts and per-(stream core, opcode) LRU
/// stack distances are folded in as events arrive.
#[derive(Debug, Clone, Default)]
pub struct LocalitySink {
    counts: HashMap<(FpOp, OperandKey), u64>,
    stacks: HashMap<(usize, FpOp), Vec<OperandKey>>,
    profiles: HashMap<FpOp, StackDistanceProfile>,
}

impl LocalitySink {
    /// An empty locality profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The stack-distance profile accumulated for `op`, if any lane
    /// instruction of that opcode was observed.
    #[must_use]
    pub fn profile(&self, op: FpOp) -> Option<&StackDistanceProfile> {
        self.profiles.get(&op)
    }

    /// Per-opcode locality summaries — the same rows
    /// [`crate::locality::summarize`] derives from a recorded trace.
    #[must_use]
    pub fn summaries(&self) -> Vec<LocalitySummary> {
        let mut ops: Vec<FpOp> = self.profiles.keys().copied().collect();
        ops.sort_unstable();
        ops.into_iter()
            .map(|op| {
                let profile = &self.profiles[&op];
                let n = profile.total;
                let mut entropy = 0.0f64;
                let mut distinct = 0usize;
                for (&(o, _), &c) in &self.counts {
                    if o == op {
                        distinct += 1;
                        let p = c as f64 / n as f64;
                        entropy -= p * p.log2();
                    }
                }
                LocalitySummary {
                    op,
                    events: n,
                    entropy_bits: entropy,
                    max_entropy_bits: (distinct as f64).log2().max(0.0),
                    predicted_hit_rates: [
                        profile.hit_rate_at_depth(2),
                        profile.hit_rate_at_depth(4),
                        profile.hit_rate_at_depth(16),
                        profile.hit_rate_at_depth(64),
                    ],
                }
            })
            .collect()
    }
}

impl EventSink for LocalitySink {
    fn on_lane(&mut self, event: &LaneEvent) {
        let key = (event.operands.bits(), event.operands.arity());
        *self.counts.entry((event.op, key)).or_default() += 1;
        let stack = self.stacks.entry((event.stream_core, event.op)).or_default();
        let profile = self.profiles.entry(event.op).or_default();
        profile.total += 1;
        match stack.iter().position(|k| *k == key) {
            Some(pos) => {
                let distance = stack.len() - 1 - pos;
                if profile.histogram.len() <= distance {
                    profile.histogram.resize(distance + 1, 0);
                }
                profile.histogram[distance] += 1;
                let k = stack.remove(pos);
                stack.push(k);
            }
            None => {
                profile.cold += 1;
                stack.push(key);
                // Same 1024-entry bound as the offline profiler: deeper
                // distances are indistinguishable from cold misses.
                if stack.len() > 1024 {
                    stack.remove(0);
                }
            }
        }
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.stacks.clear();
        self.profiles.clear();
    }
}

/// Time-windowed metrics: the per-CU half of the observability layer.
///
/// Folds the execute stage's event stream into [`WindowedSeries`] — one
/// totals series plus one per opcode — resolving lanes, hits, errors,
/// masked errors, recoveries and energy against the issue cycle. Window
/// memory is bounded ([`MetricsSink::MAX_WINDOWS`]): long runs coalesce
/// adjacent windows and double the width, so the steady-state fold path
/// never allocates (proven by `tests/alloc_free.rs`).
#[derive(Debug, Clone)]
pub struct MetricsSink {
    window: u64,
    total: WindowedSeries<METRICS_CHANNELS>,
    // Dense by `FpOp::index()` — the fold path runs twice per vector
    // instruction, so per-op lookup must be an array index, not a tree
    // walk.
    per_op: Vec<Option<WindowedSeries<METRICS_CHANNELS>>>,
}

/// Number of channels in each [`MetricsSink`] series (see the channel
/// index constants on [`MetricsSink`]).
pub const METRICS_CHANNELS: usize = 6;

impl MetricsSink {
    /// Channel index: active lanes folded into the window.
    pub const LANES: usize = 0;
    /// Channel index: lanes satisfied by reuse (LUT hit or spatial).
    pub const HITS: usize = 1;
    /// Channel index: timing errors seen.
    pub const ERRORS: usize = 2;
    /// Channel index: errors masked by reuse (hit or spatial broadcast).
    pub const MASKED: usize = 3;
    /// Channel index: ECU recoveries.
    pub const RECOVERIES: usize = 4;
    /// Channel index: energy charged, pJ (folded from vector events).
    pub const ENERGY_PJ: usize = 5;
    /// Number of channels per series ([`METRICS_CHANNELS`]).
    pub const CHANNELS: usize = METRICS_CHANNELS;
    /// Maximum retained windows per series before coalescing.
    pub const MAX_WINDOWS: usize = 256;

    /// A sink with the given initial window width in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: u64) -> Self {
        Self {
            window,
            total: WindowedSeries::new(window, Self::MAX_WINDOWS),
            per_op: vec![None; ALL_OPS.len()],
        }
    }

    fn per_op_series(&mut self, op: FpOp) -> &mut WindowedSeries<METRICS_CHANNELS> {
        let window = self.window;
        self.per_op[op.index()]
            .get_or_insert_with(|| WindowedSeries::new(window, Self::MAX_WINDOWS))
    }

    /// The configured initial window width in cycles.
    #[must_use]
    pub const fn window(&self) -> u64 {
        self.window
    }

    /// The all-opcode series.
    #[must_use]
    pub const fn total(&self) -> &WindowedSeries<METRICS_CHANNELS> {
        &self.total
    }

    /// The series for one opcode, if any instruction of it was observed.
    #[must_use]
    pub fn series(&self, op: FpOp) -> Option<&WindowedSeries<METRICS_CHANNELS>> {
        self.per_op[op.index()].as_ref()
    }

    /// Opcodes with a populated series, in opcode order.
    pub fn ops(&self) -> impl Iterator<Item = FpOp> + '_ {
        self.per_op
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| ALL_OPS[i]))
    }

    /// Installs restored series wholesale (the snapshot restore path);
    /// the per-op table is rebuilt dense by [`FpOp::index`].
    pub(crate) fn restore_series(
        &mut self,
        total: WindowedSeries<METRICS_CHANNELS>,
        per_op: Vec<(FpOp, WindowedSeries<METRICS_CHANNELS>)>,
    ) {
        self.total = total;
        self.per_op = vec![None; ALL_OPS.len()];
        for (op, series) in per_op {
            self.per_op[op.index()] = Some(series);
        }
    }

    /// Per-window hit rate of the totals series:
    /// `(window_start_cycle, window_cycles, hits / lanes)` for every
    /// window with at least one lane.
    #[must_use]
    pub fn hit_rate_windows(&self) -> Vec<(u64, u64, f64)> {
        let width = self.total.width();
        self.total
            .iter_windows()
            .filter(|(_, w)| w[Self::LANES] > 0.0)
            .map(|(start, w)| (start, width, w[Self::HITS] / w[Self::LANES]))
            .collect()
    }

    /// Batched fold of one vector instruction's lane events (all sharing
    /// `op`) — the [`SinkPipeline::flush_instruction`] fast path. The
    /// whole instruction lands in the window containing its first lane's
    /// issue cycle; energy arrives separately via
    /// [`EventSink::on_vector`].
    pub fn fold_lanes(&mut self, op: FpOp, events: &[LaneEvent]) {
        let Some(first) = events.first() else {
            return;
        };
        // Tally in integers — counts are exact, the loop stays branch-light
        // and vectorizable, and only the four totals convert to f64. This
        // is the whole per-instruction cost of the sink, guarded at ≤5% by
        // `tests/obs_overhead.rs`.
        let mut hits = 0u32;
        let mut errors = 0u32;
        let mut masked = 0u32;
        let mut recoveries = 0u32;
        for e in events {
            let hit = match e.kind {
                LaneEventKind::SpatialReuse => true,
                LaneEventKind::Issue { hit, recovered, .. } => {
                    recoveries += u32::from(!hit && recovered);
                    hit
                }
            };
            hits += u32::from(hit);
            errors += u32::from(e.error);
            masked += u32::from(e.error & hit);
        }
        let mut sample = [0.0f64; METRICS_CHANNELS];
        sample[Self::LANES] = events.len() as f64;
        sample[Self::HITS] = f64::from(hits);
        sample[Self::ERRORS] = f64::from(errors);
        sample[Self::MASKED] = f64::from(masked);
        sample[Self::RECOVERIES] = f64::from(recoveries);
        let cycle = first.cycle;
        self.total.fold(cycle, &sample);
        self.per_op_series(op).fold(cycle, &sample);
    }
}

impl EventSink for MetricsSink {
    fn on_lane(&mut self, event: &LaneEvent) {
        self.fold_lanes(event.op, std::slice::from_ref(event));
    }

    fn on_vector(&mut self, event: &VectorEvent) {
        let mut sample = [0.0f64; METRICS_CHANNELS];
        sample[Self::ENERGY_PJ] = event.energy_pj;
        self.total.fold(event.cycle, &sample);
        self.per_op_series(event.op).fold(event.cycle, &sample);
    }

    fn reset(&mut self) {
        self.total.reset();
        for series in self.per_op.iter_mut().flatten() {
            series.reset();
        }
    }
}

/// One installed sink (enum dispatch keeps the pipeline `Clone`).
#[derive(Debug, Clone)]
pub enum SinkKind {
    /// Per-opcode tallies.
    Stats(StatsSink),
    /// Energy ledger.
    Energy(EnergySink),
    /// Instruction trace.
    Trace(TraceSink),
    /// Online locality profiling.
    Locality(LocalitySink),
    /// Time-windowed metrics series.
    Metrics(MetricsSink),
}

impl SinkKind {
    fn as_sink_mut(&mut self) -> &mut dyn EventSink {
        match self {
            SinkKind::Stats(s) => s,
            SinkKind::Energy(s) => s,
            SinkKind::Trace(s) => s,
            SinkKind::Locality(s) => s,
            SinkKind::Metrics(s) => s,
        }
    }
}

/// An ordered set of sinks fed by the execute stage.
#[derive(Debug, Clone, Default)]
pub struct SinkPipeline {
    sinks: Vec<SinkKind>,
}

impl SinkPipeline {
    /// An empty pipeline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard pipeline a [`crate::ComputeUnit`] installs: stats,
    /// energy and trace always; locality when the config asks for it.
    #[must_use]
    pub fn standard(config: &DeviceConfig) -> Self {
        let mut pipeline = Self::new();
        pipeline.push(SinkKind::Stats(StatsSink::new()));
        pipeline.push(SinkKind::Energy(EnergySink::new(config)));
        pipeline.push(SinkKind::Trace(TraceSink::new(config.trace_depth)));
        if config.locality_tracking {
            pipeline.push(SinkKind::Locality(LocalitySink::new()));
        }
        if let Some(window) = config.metrics_window {
            pipeline.push(SinkKind::Metrics(MetricsSink::new(window)));
        }
        pipeline
    }

    /// Appends a sink; events flow to sinks in insertion order.
    pub fn push(&mut self, sink: SinkKind) {
        self.sinks.push(sink);
    }

    /// Number of installed sinks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sink is installed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Feeds one lane event to every sink.
    pub fn emit_lane(&mut self, event: &LaneEvent) {
        for sink in &mut self.sinks {
            sink.as_sink_mut().on_lane(event);
        }
    }

    /// Feeds one vector event to every sink.
    pub fn emit_vector(&mut self, event: &VectorEvent) {
        for sink in &mut self.sinks {
            sink.as_sink_mut().on_vector(event);
        }
    }

    /// Folds one vector instruction's worth of lane events — already in
    /// lane order — into every sink, then emits the vector-level event
    /// carrying the exact energy delta of this instruction.
    ///
    /// Equivalent to one [`SinkPipeline::emit_lane`] per event followed
    /// by [`SinkPipeline::emit_vector`], but the sink kind is matched
    /// once per instruction instead of once per lane event (no per-event
    /// virtual dispatch) and the energy sink hoists its per-op quanta
    /// out of the lane loop. This is the execute stage's batched flush.
    pub fn flush_instruction(
        &mut self,
        op: FpOp,
        events: &[LaneEvent],
        active_lanes: u64,
        spatial_hits: u64,
        spatial_masked_errors: u64,
    ) {
        let energy_before = self.total_energy_pj();
        for sink in &mut self.sinks {
            match sink {
                // Stats folds vector events only; its `on_lane` is a no-op.
                SinkKind::Stats(_) => {}
                SinkKind::Energy(s) => s.fold_lanes(op, events),
                SinkKind::Trace(s) => {
                    for event in events {
                        s.on_lane(event);
                    }
                }
                SinkKind::Locality(s) => {
                    for event in events {
                        s.on_lane(event);
                    }
                }
                SinkKind::Metrics(s) => s.fold_lanes(op, events),
            }
        }
        self.emit_vector(&VectorEvent {
            op,
            active_lanes,
            spatial_hits,
            spatial_masked_errors,
            energy_pj: self.total_energy_pj() - energy_before,
            cycle: events.first().map_or(0, |e| e.cycle),
        });
    }

    /// Resets every sink.
    pub fn reset(&mut self) {
        for sink in &mut self.sinks {
            sink.as_sink_mut().reset();
        }
    }

    /// The first energy sink's ledger, if one is installed.
    #[must_use]
    pub fn ledger(&self) -> Option<&EnergyLedger> {
        self.sinks.iter().find_map(|s| match s {
            SinkKind::Energy(e) => Some(e.ledger()),
            _ => None,
        })
    }

    /// Total energy across the pipeline's ledger (0 with no energy sink).
    #[must_use]
    pub fn total_energy_pj(&self) -> f64 {
        self.ledger().map_or(0.0, EnergyLedger::total_pj)
    }

    /// The first trace sink's buffer, if one is installed.
    #[must_use]
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.sinks.iter().find_map(|s| match s {
            SinkKind::Trace(t) => Some(t.buffer()),
            _ => None,
        })
    }

    /// The first stats sink's tallies, if one is installed.
    #[must_use]
    pub fn tallies(&self) -> Option<&BTreeMap<FpOp, OpTally>> {
        self.sinks.iter().find_map(|s| match s {
            SinkKind::Stats(t) => Some(t.tallies()),
            _ => None,
        })
    }

    /// The first locality sink, if one is installed.
    #[must_use]
    pub fn locality(&self) -> Option<&LocalitySink> {
        self.sinks.iter().find_map(|s| match s {
            SinkKind::Locality(l) => Some(l),
            _ => None,
        })
    }

    /// The first metrics sink, if one is installed.
    #[must_use]
    pub fn metrics(&self) -> Option<&MetricsSink> {
        self.sinks.iter().find_map(|s| match s {
            SinkKind::Metrics(m) => Some(m),
            _ => None,
        })
    }

    /// Mutable stats-sink access for the snapshot restore path.
    pub(crate) fn stats_mut(&mut self) -> Option<&mut StatsSink> {
        self.sinks.iter_mut().find_map(|s| match s {
            SinkKind::Stats(t) => Some(t),
            _ => None,
        })
    }

    /// Mutable energy-sink access for the snapshot restore path.
    pub(crate) fn energy_mut(&mut self) -> Option<&mut EnergySink> {
        self.sinks.iter_mut().find_map(|s| match s {
            SinkKind::Energy(e) => Some(e),
            _ => None,
        })
    }

    /// Mutable metrics-sink access for the snapshot restore path.
    pub(crate) fn metrics_mut(&mut self) -> Option<&mut MetricsSink> {
        self.sinks.iter_mut().find_map(|s| match s {
            SinkKind::Metrics(m) => Some(m),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue_event(op: FpOp, v: f32, sc: usize, hit: bool) -> LaneEvent {
        LaneEvent {
            op,
            operands: Operands::unary(v),
            result: v,
            error: false,
            stream_core: sc,
            lane: sc,
            cycle: 0,
            kind: LaneEventKind::Issue {
                hit,
                bypassed: false,
                updated: !hit,
                recovered: false,
            },
        }
    }

    #[test]
    fn stats_sink_accumulates_vector_events() {
        let mut sink = StatsSink::new();
        sink.on_vector(&VectorEvent {
            op: FpOp::Add,
            active_lanes: 64,
            spatial_hits: 3,
            spatial_masked_errors: 1,
            energy_pj: 10.0,
            cycle: 0,
        });
        sink.on_vector(&VectorEvent {
            op: FpOp::Add,
            active_lanes: 32,
            spatial_hits: 0,
            spatial_masked_errors: 0,
            energy_pj: 5.0,
            cycle: 4,
        });
        let t = sink.tallies()[&FpOp::Add];
        assert_eq!(t.vector_instructions, 2);
        assert_eq!(t.lane_instructions, 96);
        assert_eq!(t.spatial_hits, 3);
        assert!((t.energy_pj - 15.0).abs() < 1e-12);
        sink.reset();
        assert!(sink.tallies().is_empty());
    }

    #[test]
    fn energy_sink_charges_hit_vs_miss_differently() {
        let config = DeviceConfig::default();
        let mut sink = EnergySink::new(&config);
        sink.on_lane(&issue_event(FpOp::Sqrt, 2.0, 0, false));
        let miss = sink.ledger().total_pj();
        sink.reset();
        sink.on_lane(&issue_event(FpOp::Sqrt, 2.0, 0, true));
        let hit = sink.ledger().total_pj();
        assert!(hit < miss, "a hit must be cheaper than a miss");
    }

    #[test]
    fn trace_sink_records_hits_from_both_kinds() {
        let mut sink = TraceSink::new(8);
        sink.on_lane(&issue_event(FpOp::Add, 1.0, 0, true));
        let mut spatial = issue_event(FpOp::Add, 1.0, 1, false);
        spatial.kind = LaneEventKind::SpatialReuse;
        sink.on_lane(&spatial);
        let hits: Vec<bool> = sink.buffer().events().map(|e| e.hit).collect();
        assert_eq!(hits, vec![true, true]);
    }

    #[test]
    fn locality_sink_matches_offline_profile() {
        // A B A B … on one stream core: the online profile must equal
        // the offline one computed from an equivalent trace.
        let mut sink = LocalitySink::new();
        let mut trace = Vec::new();
        for i in 0..20 {
            let v = if i % 2 == 0 { 1.0 } else { 2.0 };
            let e = issue_event(FpOp::Mul, v, 0, false);
            sink.on_lane(&e);
            trace.push(TraceEvent {
                op: e.op,
                operands: e.operands,
                result: e.result,
                hit: false,
                error: false,
                stream_core: 0,
                lane: 0,
                cycle: 0,
            });
        }
        let offline = StackDistanceProfile::from_events(trace.iter());
        assert_eq!(sink.profile(FpOp::Mul), Some(&offline));
        let rows = sink.summaries();
        assert_eq!(rows.len(), 1);
        assert!((rows[0].entropy_bits - 1.0).abs() < 1e-9);
        assert_eq!(rows[0].events, 20);
    }

    #[test]
    fn pipeline_composes_and_routes_by_kind() {
        let config = DeviceConfig::builder().with_trace_depth(16).build().unwrap();
        let mut pipeline = SinkPipeline::standard(&config);
        assert_eq!(pipeline.len(), 3);
        pipeline.push(SinkKind::Locality(LocalitySink::new()));
        pipeline.emit_lane(&issue_event(FpOp::Add, 3.0, 2, false));
        pipeline.emit_vector(&VectorEvent {
            op: FpOp::Add,
            active_lanes: 1,
            spatial_hits: 0,
            spatial_masked_errors: 0,
            energy_pj: pipeline.total_energy_pj(),
            cycle: 0,
        });
        assert!(pipeline.total_energy_pj() > 0.0);
        assert_eq!(pipeline.trace().unwrap().len(), 1);
        assert_eq!(pipeline.tallies().unwrap()[&FpOp::Add].lane_instructions, 1);
        assert_eq!(pipeline.locality().unwrap().summaries().len(), 1);
        pipeline.reset();
        assert_eq!(pipeline.total_energy_pj(), 0.0);
        assert!(pipeline.trace().unwrap().is_empty());
        assert!(pipeline.tallies().unwrap().is_empty());
    }

    #[test]
    fn metrics_sink_windows_lanes_hits_and_energy() {
        let mut sink = MetricsSink::new(8);
        // Window 0: two hits, one miss-with-recovery; window 2: one miss.
        let mut miss = issue_event(FpOp::Add, 1.0, 0, false);
        miss.error = true;
        miss.kind = LaneEventKind::Issue {
            hit: false,
            bypassed: false,
            updated: false,
            recovered: true,
        };
        let batch = [
            issue_event(FpOp::Add, 1.0, 0, true),
            issue_event(FpOp::Add, 2.0, 1, true),
            miss,
        ];
        sink.fold_lanes(FpOp::Add, &batch);
        let mut later = issue_event(FpOp::Add, 3.0, 0, false);
        later.cycle = 16;
        sink.fold_lanes(FpOp::Add, std::slice::from_ref(&later));
        sink.on_vector(&VectorEvent {
            op: FpOp::Add,
            active_lanes: 3,
            spatial_hits: 0,
            spatial_masked_errors: 0,
            energy_pj: 2.5,
            cycle: 0,
        });

        let total = sink.total();
        assert_eq!(total.windows().len(), 3);
        let w0 = total.windows()[0];
        assert_eq!(w0[MetricsSink::LANES], 3.0);
        assert_eq!(w0[MetricsSink::HITS], 2.0);
        assert_eq!(w0[MetricsSink::ERRORS], 1.0);
        assert_eq!(w0[MetricsSink::MASKED], 0.0);
        assert_eq!(w0[MetricsSink::RECOVERIES], 1.0);
        assert_eq!(w0[MetricsSink::ENERGY_PJ], 2.5);
        assert_eq!(total.windows()[2][MetricsSink::LANES], 1.0);

        let rates = sink.hit_rate_windows();
        assert_eq!(rates.len(), 2);
        assert!((rates[0].2 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(rates[1], (16, 8, 0.0));
        assert_eq!(sink.ops().collect::<Vec<_>>(), vec![FpOp::Add]);
        assert_eq!(sink.series(FpOp::Add).unwrap().windows(), total.windows());

        sink.reset();
        assert!(sink.total().is_empty());
        assert!(sink.series(FpOp::Add).unwrap().is_empty(), "entries survive reset empty");
    }

    #[test]
    fn standard_pipeline_installs_metrics_only_when_configured() {
        let without = SinkPipeline::standard(&DeviceConfig::default());
        assert!(without.metrics().is_none());
        let with = SinkPipeline::standard(&DeviceConfig::builder().with_metrics_window(64).build().unwrap());
        let sink = with.metrics().expect("metrics sink installed");
        assert_eq!(sink.window(), 64);
    }

    #[test]
    fn pipeline_without_sinks_reports_defaults() {
        let p = SinkPipeline::new();
        assert!(p.is_empty());
        assert_eq!(p.total_energy_pj(), 0.0);
        assert!(p.ledger().is_none() && p.trace().is_none() && p.tallies().is_none());
    }
}
