//! A compute unit: 16 stream cores plus error/recovery/energy machinery.

use crate::config::{ArchMode, DeviceConfig};
use crate::stream_core::StreamCore;
use crate::trace::{TraceBuffer, TraceEvent};
use std::collections::BTreeMap;
use tm_core::MemoStats;
use tm_energy::EnergyLedger;
use tm_fpu::{FpOp, Operands};
use tm_timing::{Ecu, ErrorInjector};

/// Per-opcode execution tallies of one compute unit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpTally {
    /// Lane-level (scalar) instructions issued.
    pub lane_instructions: u64,
    /// Wavefront-level (vector) instructions issued.
    pub vector_instructions: u64,
    /// Lane instructions satisfied by *spatial* (intra-slot) reuse when
    /// the device runs in [`ArchMode::Spatial`].
    pub spatial_hits: u64,
    /// Timing errors masked by spatial reuse.
    pub spatial_masked_errors: u64,
    /// Energy attributed to this opcode's instructions, pJ.
    pub energy_pj: f64,
}

/// One compute unit of the device.
///
/// Owns the stream cores (and through them every FPU + memoization module),
/// the per-CU timing-error injector, the error control unit and the energy
/// ledger. The [`ComputeUnit::issue_vector`] method is the execute stage:
/// it walks the wavefront's lanes in sub-wavefront order, routes each lane
/// to its stream core, draws the EDS verdict, consults the memoization
/// module, and charges cycles and energy per the Table-2 action.
#[derive(Debug, Clone)]
pub struct ComputeUnit {
    config: DeviceConfig,
    stream_cores: Vec<StreamCore>,
    injector: ErrorInjector,
    ecu: Ecu,
    ledger: EnergyLedger,
    cycles: u64,
    tallies: BTreeMap<FpOp, OpTally>,
    trace: TraceBuffer,
}

impl ComputeUnit {
    /// Builds a compute unit; `index` decorrelates the error-injection seed
    /// across CUs.
    #[must_use]
    pub fn new(config: &DeviceConfig, index: usize) -> Self {
        let rate = config.effective_error_rate();
        let seed = config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
        Self {
            config: config.clone(),
            stream_cores: (0..config.stream_cores_per_cu)
                .map(|_| StreamCore::new())
                .collect(),
            injector: ErrorInjector::new(rate, seed),
            ecu: Ecu::new(config.recovery),
            ledger: EnergyLedger::new(),
            cycles: 0,
            tallies: BTreeMap::new(),
            trace: TraceBuffer::new(config.trace_depth),
        }
    }

    /// The instruction-trace buffer (empty unless
    /// [`DeviceConfig::trace_depth`] is non-zero).
    #[must_use]
    pub const fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Resets every statistic — memoization counters, energy ledger, ECU
    /// tallies, cycles, per-op tallies, trace — while **keeping the FIFO
    /// contents and gate state**: the measurement boundary the paper's
    /// per-kernel statistics use.
    pub fn reset_stats(&mut self) {
        for sc in &mut self.stream_cores {
            sc.reset_stats();
        }
        self.ecu.reset();
        self.ledger.reset();
        self.cycles = 0;
        self.tallies.clear();
        self.trace.clear();
    }

    /// The device configuration this CU was built with.
    #[must_use]
    pub const fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Elapsed cycles (issue slots plus recovery stalls).
    #[must_use]
    pub const fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The energy ledger.
    #[must_use]
    pub const fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// The error control unit.
    #[must_use]
    pub const fn ecu(&self) -> &Ecu {
        &self.ecu
    }

    /// Total timing violations injected so far.
    #[must_use]
    pub const fn errors_injected(&self) -> u64 {
        self.injector.errors()
    }

    /// The stream cores.
    #[must_use]
    pub fn stream_cores(&self) -> &[StreamCore] {
        &self.stream_cores
    }

    /// Per-opcode instruction tallies.
    pub fn tallies(&self) -> impl Iterator<Item = (&FpOp, &OpTally)> {
        self.tallies.iter()
    }

    /// Aggregated memoization statistics for `op` across this CU's cores.
    #[must_use]
    pub fn op_stats(&self, op: FpOp) -> MemoStats {
        self.stream_cores
            .iter()
            .filter_map(|sc| sc.unit(op))
            .map(|u| u.memo().stats())
            .sum()
    }

    /// Issues one wavefront-wide vector instruction.
    ///
    /// `srcs` holds one slice per source operand, each `lanes` long;
    /// `active` is the execution mask. Lanes are walked in increasing
    /// order, which on the `lane → SC (lane mod 16)` mapping is exactly
    /// the sub-wavefront slot order of the hardware — the property that
    /// shapes each FIFO's operand stream.
    ///
    /// Returns the per-lane results (inactive lanes produce `0.0`).
    ///
    /// # Panics
    ///
    /// Panics if operand counts or lane lengths are inconsistent with the
    /// opcode and mask.
    pub fn issue_vector(&mut self, op: FpOp, srcs: &[&[f32]], active: &[bool]) -> Vec<f32> {
        assert_eq!(srcs.len(), op.arity(), "{op} arity mismatch");
        let lanes = active.len();
        for s in srcs {
            assert_eq!(s.len(), lanes, "operand vector length mismatch");
        }

        let scale = self.config.dynamic_scale();
        let model = self.config.energy_model;
        let policy = self.config.recovery;
        let stages = op.latency();
        let num_scs = self.config.stream_cores_per_cu;

        let mut out = vec![0.0f32; lanes];
        let mut recovery_stall: u64 = 0;
        let energy_before = self.ledger.total_pj();
        let spatial = self.config.arch == ArchMode::Spatial;
        let commutative = op.is_commutative();
        // Spatial reuse table: the distinct operand sets executed so far
        // within the *current* sub-wavefront slot, with their results.
        let mut slot_table: Vec<(Operands, f32)> = Vec::new();
        let mut spatial_hits: u64 = 0;
        let mut spatial_masked: u64 = 0;

        for lane in 0..lanes {
            if !active[lane] {
                continue;
            }
            if spatial && lane % num_scs == 0 {
                // A new slot's 16 lanes execute concurrently; reuse does
                // not cross slot boundaries.
                slot_table.clear();
            }
            let mut vals = [0.0f32; tm_fpu::MAX_ARITY];
            for (k, s) in srcs.iter().enumerate() {
                vals[k] = s[lane];
            }
            let operands = Operands::from_slice(&vals[..op.arity()]);
            let error = self
                .injector
                .sample_with_rate(self.config.effective_error_rate_for_stages(stages));
            let now = self.cycles + (lane / num_scs) as u64;

            if spatial {
                if let Some(&(_, result)) = slot_table
                    .iter()
                    .find(|(stored, _)| self.config.policy.matches(&operands, stored, commutative))
                {
                    // Broadcast reuse: squash this lane's FPU, mask any
                    // timing error for free.
                    out[lane] = result;
                    let sc = &mut self.stream_cores[lane % num_scs];
                    sc.unit_mut(op, &self.config).squash_for_reuse(now);
                    self.ledger
                        .charge_hit(model.spatial_reuse_energy(op, scale));
                    spatial_hits += 1;
                    if error {
                        spatial_masked += 1;
                    }
                    self.trace.record(TraceEvent {
                        op,
                        operands,
                        result,
                        hit: true,
                        error,
                        stream_core: lane % num_scs,
                        lane,
                        cycle: now,
                    });
                    continue;
                }
            }

            let sc = &mut self.stream_cores[lane % num_scs];
            let outcome = sc.unit_mut(op, &self.config).issue(operands, error, now);
            out[lane] = outcome.result;
            self.trace.record(TraceEvent {
                op,
                operands,
                result: outcome.result,
                hit: outcome.hit,
                error,
                stream_core: lane % num_scs,
                lane,
                cycle: now,
            });
            if spatial {
                // The (possibly replayed, therefore correct) result is
                // broadcast for the rest of the slot; the cross-lane
                // comparators cost about a LUT search.
                slot_table.push((operands, outcome.result));
                self.ledger.charge_lut_lookup(model.lut_lookup_energy());
            }

            // Energy per the Table-2 action (see tm-energy docs).
            if outcome.hit {
                self.ledger.charge_hit(model.hit_energy(op, scale));
            } else {
                self.ledger.charge_exec(model.exec_energy(op, scale));
                if !outcome.bypassed {
                    self.ledger.charge_lut_lookup(model.lut_lookup_energy());
                }
                if outcome.updated {
                    self.ledger.charge_lut_update(model.lut_update_energy());
                }
                if outcome.recovered {
                    self.ledger
                        .charge_recovery(model.recovery_energy(op, policy, scale));
                    recovery_stall += u64::from(self.ecu.recover(stages));
                }
            }
        }

        // Issue occupies one slot per sub-wavefront; lock-step recovery
        // stalls the wavefront for the accumulated penalty.
        self.cycles += self.config.subwavefront_slots() as u64 + recovery_stall;

        let tally = self.tallies.entry(op).or_default();
        tally.vector_instructions += 1;
        tally.lane_instructions += active.iter().filter(|&&a| a).count() as u64;
        tally.spatial_hits += spatial_hits;
        tally.spatial_masked_errors += spatial_masked;
        tally.energy_pj += self.ledger.total_pj() - energy_before;

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArchMode, ErrorMode};

    fn cu(config: &DeviceConfig) -> ComputeUnit {
        ComputeUnit::new(config, 0)
    }

    #[test]
    fn issue_vector_computes_per_lane() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let b = vec![1.0f32; 64];
        let out = cu.issue_vector(FpOp::Add, &[&a, &b], &[true; 64]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32 + 1.0);
        }
        assert_eq!(cu.tallies().next().unwrap().1.lane_instructions, 64);
    }

    #[test]
    fn inactive_lanes_do_not_execute() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a = vec![2.0f32; 64];
        let mut active = vec![false; 64];
        active[3] = true;
        let out = cu.issue_vector(FpOp::Sqrt, &[&a], &active);
        assert_eq!(out[3], 2.0f32.sqrt());
        assert_eq!(out[4], 0.0);
        assert_eq!(cu.op_stats(FpOp::Sqrt).lookups, 1);
    }

    #[test]
    fn constant_operands_hit_after_warmup() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a = vec![3.0f32; 64];
        let active = vec![true; 64];
        cu.issue_vector(FpOp::Sqrt, &[&a], &active);
        cu.issue_vector(FpOp::Sqrt, &[&a], &active);
        let stats = cu.op_stats(FpOp::Sqrt);
        // 16 cold misses (one per SC FIFO), everything else hits.
        assert_eq!(stats.misses, 16);
        assert_eq!(stats.hits, 128 - 16);
    }

    #[test]
    fn cycles_advance_by_slots() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let active = vec![true; 64];
        cu.issue_vector(FpOp::Neg, &[&a], &active);
        assert_eq!(cu.cycles(), 4);
    }

    #[test]
    fn errors_charge_recovery_in_baseline() {
        let config = DeviceConfig::default()
            .with_arch(ArchMode::Baseline)
            .with_error_mode(ErrorMode::FixedRate(1.0));
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let active = vec![true; 64];
        cu.issue_vector(FpOp::Add, &[&a, &a], &active);
        assert_eq!(cu.ecu().recoveries(), 64);
        assert!(cu.ledger().breakdown().recovery_pj > 0.0);
        // 4 issue slots + 64 recoveries * 12 cycles.
        assert_eq!(cu.cycles(), 4 + 64 * 12);
    }

    #[test]
    fn memoized_arch_masks_hit_errors() {
        let config = DeviceConfig::default().with_error_mode(ErrorMode::FixedRate(1.0));
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let active = vec![true; 64];
        // Warm the FIFOs: all 64 lanes recover (miss + error, no update...)
        cu.issue_vector(FpOp::Add, &[&a, &a], &active);
        // With a 100% error rate nothing was committed (W_en gated), so
        // recoveries keep happening — Table 2 row {0,1} has no update.
        let stats = cu.op_stats(FpOp::Add);
        assert_eq!(stats.recoveries, 64);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn memoized_arch_masks_errors_after_preload_via_update_path() {
        // At a moderate error rate some misses commit, after which hits
        // mask subsequent errors.
        let config = DeviceConfig::default().with_error_mode(ErrorMode::FixedRate(0.3));
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let active = vec![true; 64];
        for _ in 0..4 {
            cu.issue_vector(FpOp::Add, &[&a, &a], &active);
        }
        let stats = cu.op_stats(FpOp::Add);
        assert!(stats.masked_errors > 0, "hits should have masked errors");
        assert!(stats.is_consistent());
    }

    #[test]
    fn seeds_decorrelate_across_cus() {
        let config = DeviceConfig::default().with_error_mode(ErrorMode::FixedRate(0.5));
        let mut a = ComputeUnit::new(&config, 0);
        let mut b = ComputeUnit::new(&config, 1);
        let x = vec![1.0f32; 64];
        let active = vec![true; 64];
        a.issue_vector(FpOp::Add, &[&x, &x], &active);
        b.issue_vector(FpOp::Add, &[&x, &x], &active);
        assert_ne!(a.errors_injected(), 0);
        // Equality of counts is possible but full equality of behaviour
        // across different seeds over 64 Bernoulli draws is unlikely; the
        // cycle counters diverge almost surely.
        assert!(
            a.cycles() != b.cycles() || a.errors_injected() != b.errors_injected(),
            "CUs with different seeds should not be in lock-step"
        );
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_checked() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let _ = cu.issue_vector(FpOp::Add, &[&a], &[true; 64]);
    }
}
