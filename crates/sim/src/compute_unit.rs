//! A compute unit: 16 stream cores plus error/recovery/energy machinery.

use crate::config::{ArchMode, DeviceConfig};
use crate::sink::{LaneEvent, LaneEventKind, LocalitySink, SinkPipeline};
use crate::stream_core::StreamCore;
use crate::trace::TraceBuffer;
use std::collections::BTreeMap;
use std::ops::Range;
use tm_core::MemoStats;
use tm_energy::EnergyLedger;
use tm_fpu::{FpOp, Operands};
use tm_timing::{Ecu, ErrorSampler};

pub use crate::sink::OpTally;

/// One compute unit of the device.
///
/// Owns the stream cores (and through them every FPU + memoization module),
/// the per-CU timing-error injector, the error control unit and the
/// accounting [`SinkPipeline`]. The [`ComputeUnit::issue_vector`] method is
/// the execute stage: it walks the wavefront's lanes in sub-wavefront
/// order, routes each lane to its stream core, draws the EDS verdict,
/// consults the memoization module, charges cycles, and describes each
/// lane to the sinks as a [`LaneEvent`] — the sinks (stats, energy, trace,
/// locality) fold the stream into their statistics per the Table-2 action.
#[derive(Debug, Clone)]
pub struct ComputeUnit {
    config: DeviceConfig,
    stream_cores: Vec<StreamCore>,
    /// One decorrelated error-injection stream **per stream core**,
    /// built by the configured [`tm_timing::ErrorModel`]: the EDS
    /// verdict of a lane depends only on (CU seed, its stream core,
    /// how many instructions that stream core has issued) — never on
    /// which other stream cores ran in between. This is what lets the
    /// intra-CU engine execute disjoint stream-core shards concurrently
    /// and still replay a bit-identical instruction stream.
    injectors: Vec<ErrorSampler>,
    ecu: Ecu,
    cycles: u64,
    sinks: SinkPipeline,
    scratch: IssueScratch,
}

/// Reusable hot-path buffers: grown once, reused for every vector
/// instruction so the steady-state issue loop performs no heap
/// allocation.
#[derive(Debug, Clone, Default)]
struct IssueScratch {
    /// One instruction's lane events in execution (stream-core-major)
    /// order: one contiguous ascending-lane run per stream core.
    events: Vec<LaneEvent>,
    /// Where each stream core's run begins in `events`; advanced as
    /// cursors by the lane-order merge.
    run_cursors: Vec<usize>,
    /// The instruction's events restored to lane order by the cursor
    /// merge (what the sinks fold).
    ordered: Vec<LaneEvent>,
    /// Spatial-mode intra-slot reuse table.
    slots: Vec<(Operands, f32)>,
}

/// The execution record one intra-CU shard produces: every owned lane's
/// event, grouped per instruction, in lane order. The intra-CU engine
/// merges the shards' journals instruction-aligned and replays them
/// through the real compute unit's ECU, cycle counter and sink pipeline
/// (see [`crate::IntraCuEngine`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardJournal {
    /// Per-instruction records, in issue order.
    pub(crate) instructions: Vec<JournalInstr>,
    /// Owned-lane events, lane-ascending within each instruction;
    /// instruction *k* owns `events[instructions[k-1].events_end..instructions[k].events_end]`.
    pub(crate) events: Vec<LaneEvent>,
}

/// One instruction boundary in a [`ShardJournal`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct JournalInstr {
    /// The opcode (must agree across every shard of a CU — asserted at
    /// merge time).
    pub(crate) op: FpOp,
    /// End of this instruction's event range in [`ShardJournal::events`].
    pub(crate) events_end: usize,
}

impl ComputeUnit {
    /// Builds a compute unit; `index` decorrelates the error-injection
    /// seed across CUs via [`tm_rng::child_seed`] (and a SplitMix64
    /// stream decorrelates it across the unit's stream cores). The
    /// per-SC samplers come from the configured
    /// [`DeviceConfig::error_model`].
    #[must_use]
    pub fn new(config: &DeviceConfig, index: usize) -> Self {
        let seed = tm_rng::child_seed(config.seed, index as u64);
        let mut sc_seeds = tm_rng::SplitMix64::new(seed);
        let model = config
            .error_model
            .instantiate(config.vdd, &config.voltage_model);
        Self {
            config: config.clone(),
            stream_cores: (0..config.stream_cores_per_cu)
                .map(|_| StreamCore::new())
                .collect(),
            injectors: (0..config.stream_cores_per_cu)
                .map(|sc| model.build_sampler(index, sc, sc_seeds.next_u64()))
                .collect(),
            ecu: Ecu::new(config.recovery),
            cycles: 0,
            sinks: SinkPipeline::standard(config),
            scratch: IssueScratch::default(),
        }
    }

    /// The instruction-trace buffer (empty unless
    /// [`DeviceConfig::trace_depth`] is non-zero).
    ///
    /// # Panics
    ///
    /// Panics if the trace sink was removed from the pipeline (the
    /// standard pipeline always installs one).
    #[must_use]
    pub fn trace(&self) -> &TraceBuffer {
        self.sinks.trace().expect("standard pipeline has a trace sink")
    }

    /// The accounting sink pipeline.
    #[must_use]
    pub const fn sinks(&self) -> &SinkPipeline {
        &self.sinks
    }

    /// The online locality profiler, when
    /// [`DeviceConfig::locality_tracking`] enabled one.
    #[must_use]
    pub fn locality(&self) -> Option<&LocalitySink> {
        self.sinks.locality()
    }

    /// The windowed metrics sink, when [`DeviceConfig::metrics_window`]
    /// installed one.
    #[must_use]
    pub fn metrics(&self) -> Option<&crate::sink::MetricsSink> {
        self.sinks.metrics()
    }

    /// Replaces the CU's sink pipeline wholesale.
    ///
    /// This exists for overhead measurement (e.g. timing an empty
    /// pipeline against a metrics-only one). The standard accessors
    /// ([`ComputeUnit::trace`], [`ComputeUnit::tallies`], reporting)
    /// assume the sinks [`SinkPipeline::standard`] installs, so a device
    /// whose CUs run a custom pipeline can execute kernels but may panic
    /// on reporting paths.
    pub fn install_sinks(&mut self, sinks: SinkPipeline) {
        self.sinks = sinks;
    }

    /// Resets every statistic — memoization counters, energy ledger, ECU
    /// tallies, cycles, per-op tallies, trace — while **keeping the FIFO
    /// contents and gate state**: the measurement boundary the paper's
    /// per-kernel statistics use.
    pub fn reset_stats(&mut self) {
        for sc in &mut self.stream_cores {
            sc.reset_stats();
        }
        self.ecu.reset();
        self.cycles = 0;
        self.sinks.reset();
    }

    /// The device configuration this CU was built with.
    #[must_use]
    pub const fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Elapsed cycles (issue slots plus recovery stalls).
    #[must_use]
    pub const fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The energy ledger.
    ///
    /// # Panics
    ///
    /// Panics if the energy sink was removed from the pipeline (the
    /// standard pipeline always installs one).
    #[must_use]
    pub fn ledger(&self) -> &EnergyLedger {
        self.sinks
            .ledger()
            .expect("standard pipeline has an energy sink")
    }

    /// The error control unit.
    #[must_use]
    pub const fn ecu(&self) -> &Ecu {
        &self.ecu
    }

    /// Total timing violations injected so far (summed over the per-SC
    /// streams).
    #[must_use]
    pub fn errors_injected(&self) -> u64 {
        self.injectors.iter().map(ErrorSampler::errors).sum()
    }

    /// The stream cores.
    #[must_use]
    pub fn stream_cores(&self) -> &[StreamCore] {
        &self.stream_cores
    }

    /// The per-stream-core error-injection samplers, for snapshots.
    pub(crate) fn injectors(&self) -> &[ErrorSampler] {
        &self.injectors
    }

    /// Mutable sampler access for the snapshot restore path.
    pub(crate) fn injectors_mut(&mut self) -> &mut [ErrorSampler] {
        &mut self.injectors
    }

    /// Mutable stream-core access for the snapshot restore path.
    pub(crate) fn stream_cores_mut(&mut self) -> &mut [StreamCore] {
        &mut self.stream_cores
    }

    /// Mutable ECU access for the snapshot restore path.
    pub(crate) fn ecu_mut(&mut self) -> &mut Ecu {
        &mut self.ecu
    }

    /// Mutable sink-pipeline access for the snapshot restore path.
    pub(crate) fn sinks_mut(&mut self) -> &mut SinkPipeline {
        &mut self.sinks
    }

    /// Restores the cycle counter from a snapshot.
    pub(crate) fn set_cycles(&mut self, cycles: u64) {
        self.cycles = cycles;
    }

    /// Per-opcode instruction tallies.
    ///
    /// # Panics
    ///
    /// Panics if the stats sink was removed from the pipeline (the
    /// standard pipeline always installs one).
    pub fn tallies(&self) -> impl Iterator<Item = (&FpOp, &OpTally)> {
        self.tally_map().iter()
    }

    fn tally_map(&self) -> &BTreeMap<FpOp, OpTally> {
        self.sinks
            .tallies()
            .expect("standard pipeline has a stats sink")
    }

    /// Aggregated memoization statistics for `op` across this CU's cores.
    #[must_use]
    pub fn op_stats(&self, op: FpOp) -> MemoStats {
        self.stream_cores
            .iter()
            .filter_map(|sc| sc.unit(op))
            .map(|u| u.memo().stats())
            .sum()
    }

    /// Issues one wavefront-wide vector instruction.
    ///
    /// `srcs` holds one slice per source operand, each `lanes` long;
    /// `active` is the execution mask. Lanes are walked in increasing
    /// order, which on the `lane → SC (lane mod 16)` mapping is exactly
    /// the sub-wavefront slot order of the hardware — the property that
    /// shapes each FIFO's operand stream.
    ///
    /// Returns the per-lane results (inactive lanes produce `0.0`).
    ///
    /// # Panics
    ///
    /// Panics if operand counts or lane lengths are inconsistent with the
    /// opcode and mask.
    pub fn issue_vector(&mut self, op: FpOp, srcs: &[&[f32]], active: &[bool]) -> Vec<f32> {
        let mut out = Vec::new();
        self.issue_vector_into(op, srcs, active, &mut out);
        out
    }

    /// [`ComputeUnit::issue_vector`] writing into a caller-owned result
    /// buffer: the steady-state hot path performs **no heap allocation**
    /// (lane events and the spatial reuse table live in per-CU scratch
    /// buffers grown on first use).
    ///
    /// # Panics
    ///
    /// Panics if operand counts or lane lengths are inconsistent with the
    /// opcode and mask.
    pub fn issue_vector_into(
        &mut self,
        op: FpOp,
        srcs: &[&[f32]],
        active: &[bool],
        out: &mut Vec<f32>,
    ) {
        assert_eq!(srcs.len(), op.arity(), "{op} arity mismatch");
        let lanes = active.len();
        for s in srcs {
            assert_eq!(s.len(), lanes, "operand vector length mismatch");
        }

        let stages = op.latency();
        let num_scs = self.config.stream_cores_per_cu;
        // The EDS error probability is a function of (config, op) only —
        // computed once per instruction, not once per lane.
        let rate = self.config.effective_error_rate_for_stages(stages);

        out.clear();
        out.resize(lanes, 0.0f32);
        let mut events = std::mem::take(&mut self.scratch.events);
        events.clear();
        let mut recovery_stall: u64 = 0;
        let mut spatial_hits: u64 = 0;
        let mut spatial_masked: u64 = 0;

        if self.config.arch == ArchMode::Spatial {
            self.issue_spatial(op, srcs, active, rate, out, &mut events, &mut spatial_hits, &mut spatial_masked, &mut recovery_stall);
        } else {
            let mut cursors = std::mem::take(&mut self.scratch.run_cursors);
            cursors.clear();
            recovery_stall = self.walk_stream_cores(
                op,
                srcs,
                active,
                rate,
                0..num_scs,
                out,
                &mut events,
                &mut cursors,
            );
            // Restore lane order (the hardware's sub-wavefront slot
            // order) without sorting: each SC's run is already lane
            // ascending, and an event exists exactly for the active
            // lanes, so walking lanes in order and taking the owning
            // SC's next run element is an O(lanes) stable merge.
            let mut ordered = std::mem::take(&mut self.scratch.ordered);
            ordered.clear();
            for lane in 0..lanes {
                if active[lane] {
                    let cursor = &mut cursors[lane % num_scs];
                    ordered.push(events[*cursor]);
                    *cursor += 1;
                }
            }
            debug_assert_eq!(ordered.len(), events.len());
            std::mem::swap(&mut events, &mut ordered);
            self.scratch.ordered = ordered;
            self.scratch.run_cursors = cursors;
        }

        // Issue occupies one slot per sub-wavefront; lock-step recovery
        // stalls the wavefront for the accumulated penalty.
        self.cycles += self.config.subwavefront_slots() as u64 + recovery_stall;

        let active_lanes = active.iter().filter(|&&a| a).count() as u64;
        self.sinks
            .flush_instruction(op, &events, active_lanes, spatial_hits, spatial_masked);
        self.scratch.events = events;
    }

    /// The stream-core-major walk over `sc_range` of one vector
    /// instruction: each SC's memoization unit and injector stream are
    /// resolved once per instruction instead of once per lane, and
    /// consecutive accesses hit the same FIFO. Per-SC injector streams
    /// make the draw order identical to a lane-major walk (each stream
    /// still sees its own lanes in ascending order), which is also what
    /// lets an intra-CU shard walk only the stream cores it owns.
    ///
    /// Each walked SC appends one contiguous ascending-lane run to
    /// `events` and its run start to `cursors`. Returns the accumulated
    /// recovery stall.
    #[allow(clippy::too_many_arguments)]
    fn walk_stream_cores(
        &mut self,
        op: FpOp,
        srcs: &[&[f32]],
        active: &[bool],
        rate: f64,
        sc_range: Range<usize>,
        out: &mut [f32],
        events: &mut Vec<LaneEvent>,
        cursors: &mut Vec<usize>,
    ) -> u64 {
        let stages = op.latency();
        let lanes = active.len();
        let num_scs = self.config.stream_cores_per_cu;
        let mut recovery_stall: u64 = 0;
        for sc_idx in sc_range {
            if sc_idx >= lanes {
                break;
            }
            cursors.push(events.len());
            let injector = &mut self.injectors[sc_idx];
            let unit = self.stream_cores[sc_idx].unit_mut(op, &self.config);
            let mut lane = sc_idx;
            while lane < lanes {
                if active[lane] {
                    let mut vals = [0.0f32; tm_fpu::MAX_ARITY];
                    for (k, s) in srcs.iter().enumerate() {
                        vals[k] = s[lane];
                    }
                    let operands = Operands::from_slice(&vals[..op.arity()]);
                    let error = injector.sample_with_rate(rate);
                    let now = self.cycles + (lane / num_scs) as u64;
                    let outcome = unit.issue(operands, error, now);
                    out[lane] = outcome.result;
                    events.push(LaneEvent {
                        op,
                        operands,
                        result: outcome.result,
                        error,
                        stream_core: sc_idx,
                        lane,
                        cycle: now,
                        kind: LaneEventKind::Issue {
                            hit: outcome.hit,
                            bypassed: outcome.bypassed,
                            updated: outcome.updated,
                            recovered: outcome.recovered,
                        },
                    });
                    if outcome.recovered && !outcome.hit {
                        recovery_stall += u64::from(self.ecu.recover(stages));
                    }
                }
                lane += num_scs;
            }
        }
        recovery_stall
    }

    /// [`ComputeUnit::issue_vector_into`] restricted to the stream cores
    /// in `sc_range` — the intra-CU shard execute stage.
    ///
    /// Only lanes owned by the range (`lane % num_scs ∈ sc_range`) go
    /// through the memoization/injection/event machinery. With
    /// `fill_non_owned`, non-owned active lanes are filled with the pure
    /// functional result, which in the architectures the kernel path
    /// supports (non-spatial, exact matching) *is* the committed result
    /// of every lane — exact-match hits return bit-identical stored
    /// values and recovery replays to the correct value — so kernel host
    /// code that reads across lanes (reductions, neighbour accesses)
    /// still observes the same `VReg` contents on every shard. Without
    /// it (the program path, whose lanewise IR provably never reads
    /// non-owned lanes) they stay `0.0`. Nothing reaches this unit's
    /// sinks, ECU tallies or authoritative cycle counter; instead each
    /// owned lane's event is appended to `journal` in lane order and an
    /// instruction boundary is recorded, for the intra-CU engine's
    /// ordered merge. Shard-local cycles still advance (by slots plus
    /// the *shard-local* stall) so FPU pipeline occupancy stays
    /// plausible, but the merge recomputes the authoritative timing.
    ///
    /// # Panics
    ///
    /// Panics if operand counts or lane lengths are inconsistent with the
    /// opcode and mask.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn issue_vector_sharded(
        &mut self,
        op: FpOp,
        srcs: &[&[f32]],
        active: &[bool],
        sc_range: Range<usize>,
        fill_non_owned: bool,
        out: &mut Vec<f32>,
        journal: &mut ShardJournal,
    ) {
        assert_eq!(srcs.len(), op.arity(), "{op} arity mismatch");
        let lanes = active.len();
        for s in srcs {
            assert_eq!(s.len(), lanes, "operand vector length mismatch");
        }
        assert_ne!(
            self.config.arch,
            ArchMode::Spatial,
            "spatial mode reuses across stream cores and cannot be sharded"
        );
        let num_scs = self.config.stream_cores_per_cu;
        let rate = self.config.effective_error_rate_for_stages(op.latency());

        out.clear();
        out.resize(lanes, 0.0f32);
        let mut events = std::mem::take(&mut self.scratch.events);
        events.clear();
        let mut cursors = std::mem::take(&mut self.scratch.run_cursors);
        cursors.clear();
        let stall = self.walk_stream_cores(
            op,
            srcs,
            active,
            rate,
            sc_range.clone(),
            out,
            &mut events,
            &mut cursors,
        );
        // Owned events in lane order (same cursor merge as the full walk,
        // restricted to the shard's runs); non-owned active lanes get the
        // functional result without touching their owning shard's state.
        for lane in 0..lanes {
            let sc = lane % num_scs;
            if !active[lane] {
                continue;
            }
            if sc_range.contains(&sc) {
                let cursor = &mut cursors[sc - sc_range.start];
                journal.events.push(events[*cursor]);
                *cursor += 1;
            } else if fill_non_owned {
                let mut vals = [0.0f32; tm_fpu::MAX_ARITY];
                for (k, s) in srcs.iter().enumerate() {
                    vals[k] = s[lane];
                }
                out[lane] = tm_fpu::compute(op, Operands::from_slice(&vals[..op.arity()]));
            }
        }
        self.cycles += self.config.subwavefront_slots() as u64 + stall;
        journal.instructions.push(JournalInstr {
            op,
            events_end: journal.events.len(),
        });
        self.scratch.events = events;
        self.scratch.run_cursors = cursors;
    }

    /// Takes ownership of the stream cores and injector streams in
    /// `sc_range` from `shard` (a clone of this unit that executed those
    /// cores' lanes) — the state-merge half of the intra-CU engine.
    pub(crate) fn adopt_shard(&mut self, shard: &mut ComputeUnit, sc_range: Range<usize>) {
        for sc in sc_range {
            std::mem::swap(&mut self.stream_cores[sc], &mut shard.stream_cores[sc]);
            std::mem::swap(&mut self.injectors[sc], &mut shard.injectors[sc]);
        }
    }

    /// Replays one merged instruction's lane-ordered events through this
    /// unit's ECU, cycle counter and sink pipeline — the accounting half
    /// of the intra-CU engine's ordered merge. Event cycles are rewritten
    /// against the authoritative counter (shard-local stalls diverge).
    ///
    /// The ECU recovery tally and penalty are order-independent and the
    /// sinks fold the same lane-ordered stream a sequential
    /// [`ComputeUnit::issue_vector_into`] would have flushed, so the
    /// resulting statistics are bit-identical (f64 sums included).
    pub(crate) fn replay_instruction(&mut self, op: FpOp, events: &mut [LaneEvent]) {
        let stages = op.latency();
        let num_scs = self.config.stream_cores_per_cu;
        let mut recovery_stall: u64 = 0;
        for e in events.iter_mut() {
            e.cycle = self.cycles + (e.lane / num_scs) as u64;
            if let LaneEventKind::Issue {
                hit: false,
                recovered: true,
                ..
            } = e.kind
            {
                recovery_stall += u64::from(self.ecu.recover(stages));
            }
        }
        self.cycles += self.config.subwavefront_slots() as u64 + recovery_stall;
        // In the non-spatial walk an event exists for exactly the active
        // lanes, so the event count *is* the active-lane count.
        self.sinks
            .flush_instruction(op, events, events.len() as u64, 0, 0);
    }

    /// The spatial-architecture lane-major issue path (cross-lane reuse
    /// within a sub-wavefront slot makes the walk order-dependent).
    #[allow(clippy::too_many_arguments)]
    fn issue_spatial(
        &mut self,
        op: FpOp,
        srcs: &[&[f32]],
        active: &[bool],
        rate: f64,
        out: &mut [f32],
        events: &mut Vec<LaneEvent>,
        spatial_hits: &mut u64,
        spatial_masked: &mut u64,
        recovery_stall: &mut u64,
    ) {
        let lanes = active.len();
        let num_scs = self.config.stream_cores_per_cu;
        let stages = op.latency();
        let commutative = op.is_commutative();
        // Spatial reuse table: the distinct operand sets executed so far
        // within the *current* sub-wavefront slot, with their results.
        let mut slot_table = std::mem::take(&mut self.scratch.slots);
        slot_table.clear();

        for lane in 0..lanes {
            if !active[lane] {
                continue;
            }
            if lane % num_scs == 0 {
                // A new slot's 16 lanes execute concurrently; reuse does
                // not cross slot boundaries.
                slot_table.clear();
            }
            let mut vals = [0.0f32; tm_fpu::MAX_ARITY];
            for (k, s) in srcs.iter().enumerate() {
                vals[k] = s[lane];
            }
            let operands = Operands::from_slice(&vals[..op.arity()]);
            let error = self.injectors[lane % num_scs].sample_with_rate(rate);
            let now = self.cycles + (lane / num_scs) as u64;

            if let Some(&(_, result)) = slot_table
                .iter()
                .find(|(stored, _)| self.config.policy.matches(&operands, stored, commutative))
            {
                // Broadcast reuse: squash this lane's FPU, mask any
                // timing error for free.
                out[lane] = result;
                let sc = &mut self.stream_cores[lane % num_scs];
                sc.unit_mut(op, &self.config).squash_for_reuse(now);
                *spatial_hits += 1;
                if error {
                    *spatial_masked += 1;
                }
                events.push(LaneEvent {
                    op,
                    operands,
                    result,
                    error,
                    stream_core: lane % num_scs,
                    lane,
                    cycle: now,
                    kind: LaneEventKind::SpatialReuse,
                });
                continue;
            }

            let sc = &mut self.stream_cores[lane % num_scs];
            let outcome = sc.unit_mut(op, &self.config).issue(operands, error, now);
            out[lane] = outcome.result;
            events.push(LaneEvent {
                op,
                operands,
                result: outcome.result,
                error,
                stream_core: lane % num_scs,
                lane,
                cycle: now,
                kind: LaneEventKind::Issue {
                    hit: outcome.hit,
                    bypassed: outcome.bypassed,
                    updated: outcome.updated,
                    recovered: outcome.recovered,
                },
            });
            // The (possibly replayed, therefore correct) result is
            // broadcast for the rest of the slot.
            slot_table.push((operands, outcome.result));
            if outcome.recovered && !outcome.hit {
                *recovery_stall += u64::from(self.ecu.recover(stages));
            }
        }
        self.scratch.slots = slot_table;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArchMode, ErrorMode};

    fn cu(config: &DeviceConfig) -> ComputeUnit {
        ComputeUnit::new(config, 0)
    }

    #[test]
    fn issue_vector_computes_per_lane() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let b = vec![1.0f32; 64];
        let out = cu.issue_vector(FpOp::Add, &[&a, &b], &[true; 64]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32 + 1.0);
        }
        assert_eq!(cu.tallies().next().unwrap().1.lane_instructions, 64);
    }

    #[test]
    fn inactive_lanes_do_not_execute() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a = vec![2.0f32; 64];
        let mut active = vec![false; 64];
        active[3] = true;
        let out = cu.issue_vector(FpOp::Sqrt, &[&a], &active);
        assert_eq!(out[3], 2.0f32.sqrt());
        assert_eq!(out[4], 0.0);
        assert_eq!(cu.op_stats(FpOp::Sqrt).lookups, 1);
    }

    #[test]
    fn constant_operands_hit_after_warmup() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a = vec![3.0f32; 64];
        let active = vec![true; 64];
        cu.issue_vector(FpOp::Sqrt, &[&a], &active);
        cu.issue_vector(FpOp::Sqrt, &[&a], &active);
        let stats = cu.op_stats(FpOp::Sqrt);
        // 16 cold misses (one per SC FIFO), everything else hits.
        assert_eq!(stats.misses, 16);
        assert_eq!(stats.hits, 128 - 16);
    }

    #[test]
    fn cycles_advance_by_slots() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let active = vec![true; 64];
        cu.issue_vector(FpOp::Neg, &[&a], &active);
        assert_eq!(cu.cycles(), 4);
    }

    #[test]
    fn errors_charge_recovery_in_baseline() {
        let config = DeviceConfig::builder()
            .with_arch(ArchMode::Baseline)
            .with_error_mode(ErrorMode::FixedRate(1.0)).build().unwrap();
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let active = vec![true; 64];
        cu.issue_vector(FpOp::Add, &[&a, &a], &active);
        assert_eq!(cu.ecu().recoveries(), 64);
        assert!(cu.ledger().breakdown().recovery_pj > 0.0);
        // 4 issue slots + 64 recoveries * 12 cycles.
        assert_eq!(cu.cycles(), 4 + 64 * 12);
    }

    #[test]
    fn memoized_arch_masks_hit_errors() {
        let config = DeviceConfig::builder().with_error_mode(ErrorMode::FixedRate(1.0)).build().unwrap();
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let active = vec![true; 64];
        // Warm the FIFOs: all 64 lanes recover (miss + error, no update...)
        cu.issue_vector(FpOp::Add, &[&a, &a], &active);
        // With a 100% error rate nothing was committed (W_en gated), so
        // recoveries keep happening — Table 2 row {0,1} has no update.
        let stats = cu.op_stats(FpOp::Add);
        assert_eq!(stats.recoveries, 64);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn memoized_arch_masks_errors_after_preload_via_update_path() {
        // At a moderate error rate some misses commit, after which hits
        // mask subsequent errors.
        let config = DeviceConfig::builder().with_error_mode(ErrorMode::FixedRate(0.3)).build().unwrap();
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let active = vec![true; 64];
        for _ in 0..4 {
            cu.issue_vector(FpOp::Add, &[&a, &a], &active);
        }
        let stats = cu.op_stats(FpOp::Add);
        assert!(stats.masked_errors > 0, "hits should have masked errors");
        assert!(stats.is_consistent());
    }

    #[test]
    fn seeds_decorrelate_across_cus() {
        let config = DeviceConfig::builder().with_error_mode(ErrorMode::FixedRate(0.5)).build().unwrap();
        let mut a = ComputeUnit::new(&config, 0);
        let mut b = ComputeUnit::new(&config, 1);
        let x = vec![1.0f32; 64];
        let active = vec![true; 64];
        // A single instruction's error *count* can collide across seeds
        // (64 Bernoulli draws); the running count after each of 8
        // instructions collides with negligible probability.
        let trajectory = |cu: &mut ComputeUnit| -> Vec<u64> {
            (0..8)
                .map(|_| {
                    cu.issue_vector(FpOp::Add, &[&x, &x], &active);
                    cu.errors_injected()
                })
                .collect()
        };
        let ta = trajectory(&mut a);
        let tb = trajectory(&mut b);
        assert_ne!(*ta.last().unwrap(), 0);
        assert_ne!(ta, tb, "CUs with different seeds should not be in lock-step");
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_checked() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let _ = cu.issue_vector(FpOp::Add, &[&a], &[true; 64]);
    }

    #[test]
    fn locality_sink_tracks_streams_online() {
        let config = DeviceConfig::builder().with_locality_tracking().build().unwrap();
        let mut cu = cu(&config);
        let a = vec![3.0f32; 64];
        let active = vec![true; 64];
        cu.issue_vector(FpOp::Sqrt, &[&a], &active);
        cu.issue_vector(FpOp::Sqrt, &[&a], &active);
        let rows = cu.locality().expect("locality enabled").summaries();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].events, 128);
        // A constant stream: zero entropy, perfect depth-2 reuse after
        // each FIFO's cold miss.
        assert_eq!(rows[0].entropy_bits, 0.0);
        assert!(rows[0].predicted_hit_rates[0] > 0.85);
    }
}
