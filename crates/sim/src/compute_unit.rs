//! A compute unit: 16 stream cores plus error/recovery/energy machinery.

use crate::config::{ArchMode, DeviceConfig};
use crate::sink::{LaneEvent, LaneEventKind, LocalitySink, SinkPipeline, VectorEvent};
use crate::stream_core::StreamCore;
use crate::trace::TraceBuffer;
use std::collections::BTreeMap;
use tm_core::MemoStats;
use tm_energy::EnergyLedger;
use tm_fpu::{FpOp, Operands};
use tm_timing::{Ecu, ErrorInjector};

pub use crate::sink::OpTally;

/// One compute unit of the device.
///
/// Owns the stream cores (and through them every FPU + memoization module),
/// the per-CU timing-error injector, the error control unit and the
/// accounting [`SinkPipeline`]. The [`ComputeUnit::issue_vector`] method is
/// the execute stage: it walks the wavefront's lanes in sub-wavefront
/// order, routes each lane to its stream core, draws the EDS verdict,
/// consults the memoization module, charges cycles, and describes each
/// lane to the sinks as a [`LaneEvent`] — the sinks (stats, energy, trace,
/// locality) fold the stream into their statistics per the Table-2 action.
#[derive(Debug, Clone)]
pub struct ComputeUnit {
    config: DeviceConfig,
    stream_cores: Vec<StreamCore>,
    injector: ErrorInjector,
    ecu: Ecu,
    cycles: u64,
    sinks: SinkPipeline,
}

impl ComputeUnit {
    /// Builds a compute unit; `index` decorrelates the error-injection seed
    /// across CUs.
    #[must_use]
    pub fn new(config: &DeviceConfig, index: usize) -> Self {
        let rate = config.effective_error_rate();
        let seed = config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1));
        Self {
            config: config.clone(),
            stream_cores: (0..config.stream_cores_per_cu)
                .map(|_| StreamCore::new())
                .collect(),
            injector: ErrorInjector::new(rate, seed),
            ecu: Ecu::new(config.recovery),
            cycles: 0,
            sinks: SinkPipeline::standard(config),
        }
    }

    /// The instruction-trace buffer (empty unless
    /// [`DeviceConfig::trace_depth`] is non-zero).
    ///
    /// # Panics
    ///
    /// Panics if the trace sink was removed from the pipeline (the
    /// standard pipeline always installs one).
    #[must_use]
    pub fn trace(&self) -> &TraceBuffer {
        self.sinks.trace().expect("standard pipeline has a trace sink")
    }

    /// The accounting sink pipeline.
    #[must_use]
    pub const fn sinks(&self) -> &SinkPipeline {
        &self.sinks
    }

    /// The online locality profiler, when
    /// [`DeviceConfig::locality_tracking`] enabled one.
    #[must_use]
    pub fn locality(&self) -> Option<&LocalitySink> {
        self.sinks.locality()
    }

    /// Resets every statistic — memoization counters, energy ledger, ECU
    /// tallies, cycles, per-op tallies, trace — while **keeping the FIFO
    /// contents and gate state**: the measurement boundary the paper's
    /// per-kernel statistics use.
    pub fn reset_stats(&mut self) {
        for sc in &mut self.stream_cores {
            sc.reset_stats();
        }
        self.ecu.reset();
        self.cycles = 0;
        self.sinks.reset();
    }

    /// The device configuration this CU was built with.
    #[must_use]
    pub const fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Elapsed cycles (issue slots plus recovery stalls).
    #[must_use]
    pub const fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The energy ledger.
    ///
    /// # Panics
    ///
    /// Panics if the energy sink was removed from the pipeline (the
    /// standard pipeline always installs one).
    #[must_use]
    pub fn ledger(&self) -> &EnergyLedger {
        self.sinks
            .ledger()
            .expect("standard pipeline has an energy sink")
    }

    /// The error control unit.
    #[must_use]
    pub const fn ecu(&self) -> &Ecu {
        &self.ecu
    }

    /// Total timing violations injected so far.
    #[must_use]
    pub const fn errors_injected(&self) -> u64 {
        self.injector.errors()
    }

    /// The stream cores.
    #[must_use]
    pub fn stream_cores(&self) -> &[StreamCore] {
        &self.stream_cores
    }

    /// Per-opcode instruction tallies.
    ///
    /// # Panics
    ///
    /// Panics if the stats sink was removed from the pipeline (the
    /// standard pipeline always installs one).
    pub fn tallies(&self) -> impl Iterator<Item = (&FpOp, &OpTally)> {
        self.tally_map().iter()
    }

    fn tally_map(&self) -> &BTreeMap<FpOp, OpTally> {
        self.sinks
            .tallies()
            .expect("standard pipeline has a stats sink")
    }

    /// Aggregated memoization statistics for `op` across this CU's cores.
    #[must_use]
    pub fn op_stats(&self, op: FpOp) -> MemoStats {
        self.stream_cores
            .iter()
            .filter_map(|sc| sc.unit(op))
            .map(|u| u.memo().stats())
            .sum()
    }

    /// Issues one wavefront-wide vector instruction.
    ///
    /// `srcs` holds one slice per source operand, each `lanes` long;
    /// `active` is the execution mask. Lanes are walked in increasing
    /// order, which on the `lane → SC (lane mod 16)` mapping is exactly
    /// the sub-wavefront slot order of the hardware — the property that
    /// shapes each FIFO's operand stream.
    ///
    /// Returns the per-lane results (inactive lanes produce `0.0`).
    ///
    /// # Panics
    ///
    /// Panics if operand counts or lane lengths are inconsistent with the
    /// opcode and mask.
    pub fn issue_vector(&mut self, op: FpOp, srcs: &[&[f32]], active: &[bool]) -> Vec<f32> {
        assert_eq!(srcs.len(), op.arity(), "{op} arity mismatch");
        let lanes = active.len();
        for s in srcs {
            assert_eq!(s.len(), lanes, "operand vector length mismatch");
        }

        let stages = op.latency();
        let num_scs = self.config.stream_cores_per_cu;

        let mut out = vec![0.0f32; lanes];
        let mut recovery_stall: u64 = 0;
        let energy_before = self.sinks.total_energy_pj();
        let spatial = self.config.arch == ArchMode::Spatial;
        let commutative = op.is_commutative();
        // Spatial reuse table: the distinct operand sets executed so far
        // within the *current* sub-wavefront slot, with their results.
        let mut slot_table: Vec<(Operands, f32)> = Vec::new();
        let mut spatial_hits: u64 = 0;
        let mut spatial_masked: u64 = 0;

        for lane in 0..lanes {
            if !active[lane] {
                continue;
            }
            if spatial && lane % num_scs == 0 {
                // A new slot's 16 lanes execute concurrently; reuse does
                // not cross slot boundaries.
                slot_table.clear();
            }
            let mut vals = [0.0f32; tm_fpu::MAX_ARITY];
            for (k, s) in srcs.iter().enumerate() {
                vals[k] = s[lane];
            }
            let operands = Operands::from_slice(&vals[..op.arity()]);
            let error = self
                .injector
                .sample_with_rate(self.config.effective_error_rate_for_stages(stages));
            let now = self.cycles + (lane / num_scs) as u64;

            if spatial {
                if let Some(&(_, result)) = slot_table
                    .iter()
                    .find(|(stored, _)| self.config.policy.matches(&operands, stored, commutative))
                {
                    // Broadcast reuse: squash this lane's FPU, mask any
                    // timing error for free.
                    out[lane] = result;
                    let sc = &mut self.stream_cores[lane % num_scs];
                    sc.unit_mut(op, &self.config).squash_for_reuse(now);
                    spatial_hits += 1;
                    if error {
                        spatial_masked += 1;
                    }
                    self.sinks.emit_lane(&LaneEvent {
                        op,
                        operands,
                        result,
                        error,
                        stream_core: lane % num_scs,
                        lane,
                        cycle: now,
                        kind: LaneEventKind::SpatialReuse,
                    });
                    continue;
                }
            }

            let sc = &mut self.stream_cores[lane % num_scs];
            let outcome = sc.unit_mut(op, &self.config).issue(operands, error, now);
            out[lane] = outcome.result;
            self.sinks.emit_lane(&LaneEvent {
                op,
                operands,
                result: outcome.result,
                error,
                stream_core: lane % num_scs,
                lane,
                cycle: now,
                kind: LaneEventKind::Issue {
                    hit: outcome.hit,
                    bypassed: outcome.bypassed,
                    updated: outcome.updated,
                    recovered: outcome.recovered,
                },
            });
            if spatial {
                // The (possibly replayed, therefore correct) result is
                // broadcast for the rest of the slot.
                slot_table.push((operands, outcome.result));
            }
            if outcome.recovered && !outcome.hit {
                recovery_stall += u64::from(self.ecu.recover(stages));
            }
        }

        // Issue occupies one slot per sub-wavefront; lock-step recovery
        // stalls the wavefront for the accumulated penalty.
        self.cycles += self.config.subwavefront_slots() as u64 + recovery_stall;

        self.sinks.emit_vector(&VectorEvent {
            op,
            active_lanes: active.iter().filter(|&&a| a).count() as u64,
            spatial_hits,
            spatial_masked_errors: spatial_masked,
            energy_pj: self.sinks.total_energy_pj() - energy_before,
        });

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArchMode, ErrorMode};

    fn cu(config: &DeviceConfig) -> ComputeUnit {
        ComputeUnit::new(config, 0)
    }

    #[test]
    fn issue_vector_computes_per_lane() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let b = vec![1.0f32; 64];
        let out = cu.issue_vector(FpOp::Add, &[&a, &b], &[true; 64]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32 + 1.0);
        }
        assert_eq!(cu.tallies().next().unwrap().1.lane_instructions, 64);
    }

    #[test]
    fn inactive_lanes_do_not_execute() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a = vec![2.0f32; 64];
        let mut active = vec![false; 64];
        active[3] = true;
        let out = cu.issue_vector(FpOp::Sqrt, &[&a], &active);
        assert_eq!(out[3], 2.0f32.sqrt());
        assert_eq!(out[4], 0.0);
        assert_eq!(cu.op_stats(FpOp::Sqrt).lookups, 1);
    }

    #[test]
    fn constant_operands_hit_after_warmup() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a = vec![3.0f32; 64];
        let active = vec![true; 64];
        cu.issue_vector(FpOp::Sqrt, &[&a], &active);
        cu.issue_vector(FpOp::Sqrt, &[&a], &active);
        let stats = cu.op_stats(FpOp::Sqrt);
        // 16 cold misses (one per SC FIFO), everything else hits.
        assert_eq!(stats.misses, 16);
        assert_eq!(stats.hits, 128 - 16);
    }

    #[test]
    fn cycles_advance_by_slots() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let active = vec![true; 64];
        cu.issue_vector(FpOp::Neg, &[&a], &active);
        assert_eq!(cu.cycles(), 4);
    }

    #[test]
    fn errors_charge_recovery_in_baseline() {
        let config = DeviceConfig::default()
            .with_arch(ArchMode::Baseline)
            .with_error_mode(ErrorMode::FixedRate(1.0));
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let active = vec![true; 64];
        cu.issue_vector(FpOp::Add, &[&a, &a], &active);
        assert_eq!(cu.ecu().recoveries(), 64);
        assert!(cu.ledger().breakdown().recovery_pj > 0.0);
        // 4 issue slots + 64 recoveries * 12 cycles.
        assert_eq!(cu.cycles(), 4 + 64 * 12);
    }

    #[test]
    fn memoized_arch_masks_hit_errors() {
        let config = DeviceConfig::default().with_error_mode(ErrorMode::FixedRate(1.0));
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let active = vec![true; 64];
        // Warm the FIFOs: all 64 lanes recover (miss + error, no update...)
        cu.issue_vector(FpOp::Add, &[&a, &a], &active);
        // With a 100% error rate nothing was committed (W_en gated), so
        // recoveries keep happening — Table 2 row {0,1} has no update.
        let stats = cu.op_stats(FpOp::Add);
        assert_eq!(stats.recoveries, 64);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn memoized_arch_masks_errors_after_preload_via_update_path() {
        // At a moderate error rate some misses commit, after which hits
        // mask subsequent errors.
        let config = DeviceConfig::default().with_error_mode(ErrorMode::FixedRate(0.3));
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let active = vec![true; 64];
        for _ in 0..4 {
            cu.issue_vector(FpOp::Add, &[&a, &a], &active);
        }
        let stats = cu.op_stats(FpOp::Add);
        assert!(stats.masked_errors > 0, "hits should have masked errors");
        assert!(stats.is_consistent());
    }

    #[test]
    fn seeds_decorrelate_across_cus() {
        let config = DeviceConfig::default().with_error_mode(ErrorMode::FixedRate(0.5));
        let mut a = ComputeUnit::new(&config, 0);
        let mut b = ComputeUnit::new(&config, 1);
        let x = vec![1.0f32; 64];
        let active = vec![true; 64];
        a.issue_vector(FpOp::Add, &[&x, &x], &active);
        b.issue_vector(FpOp::Add, &[&x, &x], &active);
        assert_ne!(a.errors_injected(), 0);
        // Equality of counts is possible but full equality of behaviour
        // across different seeds over 64 Bernoulli draws is unlikely; the
        // cycle counters diverge almost surely.
        assert!(
            a.cycles() != b.cycles() || a.errors_injected() != b.errors_injected(),
            "CUs with different seeds should not be in lock-step"
        );
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_is_checked() {
        let config = DeviceConfig::default();
        let mut cu = cu(&config);
        let a = vec![1.0f32; 64];
        let _ = cu.issue_vector(FpOp::Add, &[&a], &[true; 64]);
    }

    #[test]
    fn locality_sink_tracks_streams_online() {
        let config = DeviceConfig::default().with_locality_tracking();
        let mut cu = cu(&config);
        let a = vec![3.0f32; 64];
        let active = vec![true; 64];
        cu.issue_vector(FpOp::Sqrt, &[&a], &active);
        cu.issue_vector(FpOp::Sqrt, &[&a], &active);
        let rows = cu.locality().expect("locality enabled").summaries();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].events, 128);
        // A constant stream: zero entropy, perfect depth-2 reuse after
        // each FIFO's cold miss.
        assert_eq!(rows[0].entropy_bits, 0.0);
        assert!(rows[0].predicted_hit_rates[0] > 0.85);
    }
}
