//! Versioned device snapshots: serialize a [`Device`]'s full
//! architectural state to the tm-obs JSON format and restore it into a
//! bit-identical simulator.
//!
//! A snapshot captures everything that influences future execution:
//!
//! * the validated [`DeviceConfig`] (so a snapshot is self-describing),
//! * per-CU cycle counters, ECU recovery tallies and error-injector RNG
//!   states (raw PCG32 words, serialized as hex strings — `f64` JSON
//!   numbers cannot hold full 64-bit words),
//! * per-CU sink state: per-op tallies, the energy ledger breakdown and
//!   (when configured) the windowed metrics series,
//! * per-SC per-op lane units: MMIO registers, memo FIFO contents
//!   (operand/result IEEE-754 bit patterns, oldest entry first), memo
//!   statistics, FPU counters/pipeline occupancy and adaptive-gate state,
//! * the device-level wavefront dispatch counter.
//!
//! Not captured (v1 limitations, documented in `DESIGN.md`): the bounded
//! instruction trace ring buffer (restored devices start with an empty
//! trace), attached observers (recorder/telemetry hub), and the
//! [`LocalitySink`](crate::sink::LocalitySink) — snapshotting a device
//! with `locality_tracking` enabled returns
//! [`SnapshotError::Unsupported`].
//!
//! The format is versioned ([`SNAPSHOT_VERSION`]); decoding rejects
//! unknown versions and malformed documents with a structured
//! [`SnapshotError`] — never a panic.

use crate::compute_unit::ComputeUnit;
use crate::config::{ArchMode, ConfigError, DeviceConfig, ErrorMode, ExecBackend};
use crate::device::Device;
use crate::sink::{MetricsSink, OpTally, METRICS_CHANNELS};
use std::fmt;
use tm_core::{GatePolicy, GateState, MatchPolicy, MemoStats, Reg, Replacement};
use tm_energy::{EnergyBreakdown, EnergyModel};
use tm_fpu::{FpOp, FpuCounters, Operands, ALL_OPS, MAX_ARITY};
use tm_obs::json::{f64_array, str_array, JsonError, JsonValue, ObjWriter};
use tm_timing::{
    BurstErrors, ErrorModelSpec, ErrorSamplerState, HeterogeneousErrors, RecoveryPolicy,
    VoltageModel,
};

/// Format version written by [`Device::snapshot`] and accepted by
/// [`DeviceSnapshot::from_json`].
pub const SNAPSHOT_VERSION: u64 = 1;

/// The `kind` discriminator of a snapshot document.
const SNAPSHOT_KIND: &str = "tm-device-snapshot";

/// Why a snapshot could not be captured, decoded or restored.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The document is not valid JSON.
    Json(JsonError),
    /// The document is valid JSON but violates the snapshot schema; the
    /// message names the offending path.
    Schema(String),
    /// The embedded device configuration failed validation.
    Config(ConfigError),
    /// The document declares a format version this build cannot read.
    Version {
        /// The version the document declares.
        found: u64,
    },
    /// The device holds state the v1 format cannot express.
    Unsupported(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Json(e) => write!(f, "snapshot is not valid JSON: {e}"),
            Self::Schema(msg) => write!(f, "snapshot schema violation: {msg}"),
            Self::Config(e) => write!(f, "snapshot carries an invalid device config: {e}"),
            Self::Version { found } => write!(
                f,
                "snapshot version {found} is not supported (this build reads version {SNAPSHOT_VERSION})"
            ),
            Self::Unsupported(msg) => write!(f, "device state not snapshottable: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Json(e) => Some(e),
            Self::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonError> for SnapshotError {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

impl From<ConfigError> for SnapshotError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

fn schema(path: &str, msg: impl fmt::Display) -> SnapshotError {
    SnapshotError::Schema(format!("{path}: {msg}"))
}

/// One captured windowed series (total or per-op).
#[derive(Debug, Clone, PartialEq)]
struct SeriesState {
    initial_width: u64,
    width: u64,
    windows: Vec<[f64; METRICS_CHANNELS]>,
}

/// Captured [`MetricsSink`] contents.
#[derive(Debug, Clone, PartialEq)]
struct MetricsState {
    total: SeriesState,
    per_op: Vec<(FpOp, SeriesState)>,
}

/// One memo-FIFO entry (IEEE-754 bit patterns, arity-length operands).
#[derive(Debug, Clone, PartialEq)]
struct EntryState {
    operand_bits: Vec<u32>,
    result_bits: u32,
}

/// One lane unit (per-SC, per-op FPU + memo module).
#[derive(Debug, Clone, PartialEq)]
struct UnitState {
    op: FpOp,
    ctrl: u32,
    mask: u32,
    threshold_bits: u32,
    update_after_recovery: bool,
    stats: MemoStats,
    /// Oldest entry first (insertion order), so restoring by repeated
    /// `preload` reproduces the FIFO exactly.
    fifo: Vec<EntryState>,
    fpu_counters: FpuCounters,
    last_issue: Option<u64>,
    issued: u64,
    slip_cycles: u64,
    gate: Option<GateState>,
}

/// One compute unit's captured state.
#[derive(Debug, Clone, PartialEq)]
struct CuState {
    cycles: u64,
    ecu_recoveries: u64,
    ecu_recovery_cycles: u64,
    injectors: Vec<ErrorSamplerState>,
    tallies: Vec<(FpOp, OpTally)>,
    energy: EnergyBreakdown,
    metrics: Option<MetricsState>,
    stream_cores: Vec<Vec<UnitState>>,
}

/// A complete, self-describing device snapshot.
///
/// Obtained from [`Device::snapshot`] or [`DeviceSnapshot::from_json`];
/// consumed by [`Device::restore`] or serialized with
/// [`DeviceSnapshot::to_json`]. Restoring and re-snapshotting yields a
/// byte-identical JSON document.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSnapshot {
    config: DeviceConfig,
    wavefronts_dispatched: u64,
    cus: Vec<CuState>,
}

impl DeviceSnapshot {
    /// The embedded device configuration.
    #[must_use]
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The captured wavefront dispatch counter.
    #[must_use]
    pub const fn wavefronts_dispatched(&self) -> u64 {
        self.wavefronts_dispatched
    }

    /// Total memo-FIFO entries captured across every lane unit — the
    /// temporal-locality payload a restore or warm start carries over.
    #[must_use]
    pub fn fifo_entries(&self) -> u64 {
        self.cus
            .iter()
            .flat_map(|cu| &cu.stream_cores)
            .flatten()
            .map(|unit| unit.fifo.len() as u64)
            .sum()
    }

    /// Serializes the snapshot as a single JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = ObjWriter::new();
        w.str_field("kind", SNAPSHOT_KIND);
        w.u64_field("version", SNAPSHOT_VERSION);
        w.raw_field("config", &config_to_json(&self.config));
        w.u64_field("wavefronts_dispatched", self.wavefronts_dispatched);
        let cus: Vec<String> = self.cus.iter().map(cu_to_json).collect();
        w.raw_field("compute_units", &format!("[{}]", cus.join(",")));
        w.finish()
    }

    /// Parses and validates a snapshot document.
    ///
    /// # Errors
    ///
    /// Returns a structured [`SnapshotError`] for malformed JSON, schema
    /// violations, unknown versions or invalid embedded configurations.
    /// Never panics on untrusted input.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        let root = JsonValue::parse(text)?;
        let kind = want_str(&root, "$", "kind")?;
        if kind != SNAPSHOT_KIND {
            return Err(schema("$.kind", format!("expected \"{SNAPSHOT_KIND}\", got \"{kind}\"")));
        }
        let version = want_u64(&root, "$", "version")?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::Version { found: version });
        }
        let config = config_from_json(want(&root, "$", "config")?)?;
        config.check()?;
        if config.locality_tracking {
            return Err(SnapshotError::Unsupported(
                "locality_tracking devices cannot be snapshotted (v1)".into(),
            ));
        }
        let wavefronts_dispatched = want_u64(&root, "$", "wavefronts_dispatched")?;
        let cus_json = want_arr(&root, "$", "compute_units")?;
        if cus_json.len() != config.compute_units {
            return Err(schema(
                "$.compute_units",
                format!(
                    "expected {} compute units, got {}",
                    config.compute_units,
                    cus_json.len()
                ),
            ));
        }
        let mut cus = Vec::with_capacity(cus_json.len());
        for (i, cu) in cus_json.iter().enumerate() {
            cus.push(cu_from_json(cu, &format!("$.compute_units[{i}]"), &config)?);
        }
        Ok(Self {
            config,
            wavefronts_dispatched,
            cus,
        })
    }
}

impl Device {
    /// Captures the device's architectural state as a [`DeviceSnapshot`].
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Unsupported`] when the device profiles
    /// value locality online (`locality_tracking`): the v1 format does
    /// not serialize the [`LocalitySink`](crate::sink::LocalitySink).
    pub fn snapshot(&self) -> Result<DeviceSnapshot, SnapshotError> {
        if self.config().locality_tracking {
            return Err(SnapshotError::Unsupported(
                "locality_tracking devices cannot be snapshotted (v1)".into(),
            ));
        }
        let cus = self.compute_units().iter().map(capture_cu).collect();
        Ok(DeviceSnapshot {
            config: self.config().clone(),
            wavefronts_dispatched: self.wavefronts_dispatched(),
            cus,
        })
    }

    /// Builds a fresh device and restores `snapshot` onto it.
    ///
    /// The restored device continues execution exactly as the captured
    /// one would have: memo FIFO contents, RNG streams, pipeline
    /// occupancy, counters and energy accumulators all match. The
    /// instruction trace starts empty (not captured in v1) and no
    /// observers are attached.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::Config`] for invalid embedded
    /// configurations and [`SnapshotError::Schema`] when the captured
    /// state is inconsistent with the configured geometry.
    pub fn restore(snapshot: &DeviceSnapshot) -> Result<Self, SnapshotError> {
        let config = &snapshot.config;
        config.check()?;
        if config.locality_tracking {
            return Err(SnapshotError::Unsupported(
                "locality_tracking devices cannot be restored (v1)".into(),
            ));
        }
        if snapshot.cus.len() != config.compute_units {
            return Err(schema(
                "compute_units",
                format!(
                    "snapshot has {} compute units, config declares {}",
                    snapshot.cus.len(),
                    config.compute_units
                ),
            ));
        }
        let mut device = Device::new(config.clone());
        let config = device.config().clone();
        for (i, (cu, state)) in device
            .compute_units_mut()
            .iter_mut()
            .zip(&snapshot.cus)
            .enumerate()
        {
            restore_cu(cu, state, &config, &format!("compute_units[{i}]"))?;
        }
        device.set_wavefronts_dispatched(snapshot.wavefronts_dispatched);
        Ok(device)
    }

    /// Warm-starts this device's memo FIFOs from `snapshot`'s captured
    /// contents, leaving counters, RNG streams and MMIO registers
    /// untouched.
    ///
    /// Unlike [`Device::restore`], the snapshot's configuration does not
    /// have to match: FIFO contents transfer wherever the geometries
    /// overlap (compute unit / stream core / opcode), entries preload
    /// oldest-first, and anything the target cannot hold (deeper FIFOs,
    /// extra cores, malformed arities) is silently dropped. The warm
    /// state is a pure function of the snapshot, which is what lets a
    /// sharded campaign warm every trial identically on every shard.
    pub fn preload_fifos(&mut self, snapshot: &DeviceSnapshot) {
        let config = self.config().clone();
        for (cu, state) in self.compute_units_mut().iter_mut().zip(&snapshot.cus) {
            for (sc, sc_state) in cu.stream_cores_mut().iter_mut().zip(&state.stream_cores) {
                for unit_state in sc_state {
                    let memo = sc.unit_mut(unit_state.op, &config).memo_mut();
                    for entry in &unit_state.fifo {
                        let n = entry.operand_bits.len();
                        if n == 0 || n > MAX_ARITY {
                            continue;
                        }
                        let operands: Vec<f32> =
                            entry.operand_bits.iter().map(|&b| f32::from_bits(b)).collect();
                        memo.preload(
                            Operands::from_slice(&operands),
                            f32::from_bits(entry.result_bits),
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Capture
// ---------------------------------------------------------------------

fn capture_cu(cu: &ComputeUnit) -> CuState {
    let tallies = cu.tallies().map(|(op, t)| (*op, *t)).collect();
    let energy = cu.ledger().breakdown();
    let metrics = cu.metrics().map(capture_metrics);
    let stream_cores = cu
        .stream_cores()
        .iter()
        .map(|sc| {
            sc.units()
                .map(|(op, unit)| {
                    let memo = unit.memo();
                    let mmio = memo.mmio();
                    // Newest-first per `MemoFifo::iter`; store oldest
                    // first so `preload` replays reproduce the order.
                    let mut fifo: Vec<EntryState> = memo
                        .fifo()
                        .iter()
                        .map(|e| EntryState {
                            operand_bits: e
                                .operands
                                .as_slice()
                                .iter()
                                .map(|v| v.to_bits())
                                .collect(),
                            result_bits: e.result.to_bits(),
                        })
                        .collect();
                    fifo.reverse();
                    let pipeline = unit.fpu().pipeline();
                    UnitState {
                        op: *op,
                        ctrl: mmio.read(Reg::Ctrl),
                        mask: mmio.read(Reg::Mask),
                        threshold_bits: mmio.read(Reg::Threshold),
                        update_after_recovery: memo.update_after_recovery(),
                        stats: memo.stats(),
                        fifo,
                        fpu_counters: unit.fpu().counters(),
                        last_issue: pipeline.last_issue(),
                        issued: pipeline.issued(),
                        slip_cycles: pipeline.slip_cycles(),
                        gate: unit.gate().map(|g| g.state()),
                    }
                })
                .collect()
        })
        .collect();
    CuState {
        cycles: cu.cycles(),
        ecu_recoveries: cu.ecu().recoveries(),
        ecu_recovery_cycles: cu.ecu().recovery_cycles(),
        injectors: cu.injectors().iter().map(|s| s.state()).collect(),
        tallies,
        energy,
        metrics,
        stream_cores,
    }
}

fn capture_metrics(sink: &MetricsSink) -> MetricsState {
    let capture = |s: &tm_obs::WindowedSeries<METRICS_CHANNELS>| SeriesState {
        initial_width: s.initial_width(),
        width: s.width(),
        windows: s.windows().to_vec(),
    };
    MetricsState {
        total: capture(sink.total()),
        per_op: sink
            .ops()
            .filter_map(|op| sink.series(op).map(|s| (op, capture(s))))
            .collect(),
    }
}

// ---------------------------------------------------------------------
// Restore
// ---------------------------------------------------------------------

fn restore_cu(
    cu: &mut ComputeUnit,
    state: &CuState,
    config: &DeviceConfig,
    path: &str,
) -> Result<(), SnapshotError> {
    if state.injectors.len() != config.stream_cores_per_cu {
        return Err(schema(
            path,
            format!(
                "snapshot has {} injector states, config declares {} stream cores",
                state.injectors.len(),
                config.stream_cores_per_cu
            ),
        ));
    }
    if state.stream_cores.len() != config.stream_cores_per_cu {
        return Err(schema(
            path,
            format!(
                "snapshot has {} stream cores, config declares {}",
                state.stream_cores.len(),
                config.stream_cores_per_cu
            ),
        ));
    }
    cu.set_cycles(state.cycles);
    cu.ecu_mut()
        .restore_tallies(state.ecu_recoveries, state.ecu_recovery_cycles);
    for (i, (sampler, st)) in cu.injectors_mut().iter_mut().zip(&state.injectors).enumerate() {
        sampler
            .restore_state(st)
            .map_err(|e| schema(&format!("{path}.injectors[{i}]"), e))?;
    }

    // Sinks: stats, energy and (when configured) metrics.
    let sinks = cu.sinks_mut();
    if let Some(stats) = sinks.stats_mut() {
        let map = stats.tallies_mut();
        map.clear();
        for (op, tally) in &state.tallies {
            map.insert(*op, *tally);
        }
    }
    if let Some(energy) = sinks.energy_mut() {
        let b = &state.energy;
        for (name, pj) in [
            ("fpu_exec_pj", b.fpu_exec_pj),
            ("hit_pj", b.hit_pj),
            ("lut_lookup_pj", b.lut_lookup_pj),
            ("lut_update_pj", b.lut_update_pj),
            ("recovery_pj", b.recovery_pj),
        ] {
            if !pj.is_finite() || pj < 0.0 {
                return Err(schema(
                    &format!("{path}.energy.{name}"),
                    format!("energy must be finite and non-negative, got {pj}"),
                ));
            }
        }
        let ledger = energy.ledger_mut();
        ledger.reset();
        ledger.charge_exec(b.fpu_exec_pj);
        ledger.charge_hit(b.hit_pj);
        ledger.charge_lut_lookup(b.lut_lookup_pj);
        ledger.charge_lut_update(b.lut_update_pj);
        ledger.charge_recovery(b.recovery_pj);
    }
    match (config.metrics_window, &state.metrics) {
        (None, None) => {}
        (None, Some(_)) => {
            return Err(schema(
                &format!("{path}.metrics"),
                "snapshot carries metrics but the config disables them",
            ));
        }
        (Some(_), None) => {
            return Err(schema(
                &format!("{path}.metrics"),
                "config enables metrics but the snapshot has none",
            ));
        }
        (Some(window), Some(metrics)) => {
            let mpath = format!("{path}.metrics");
            let total = build_series(&metrics.total, window, &format!("{mpath}.total"))?;
            let mut per_op = Vec::with_capacity(metrics.per_op.len());
            for (op, s) in &metrics.per_op {
                let series =
                    build_series(s, window, &format!("{mpath}.per_op.{}", op.mnemonic()))?;
                per_op.push((*op, series));
            }
            let sink = cu.sinks_mut().metrics_mut().ok_or_else(|| {
                schema(&mpath, "device has no metrics sink despite the config")
            })?;
            sink.restore_series(total, per_op);
        }
    }

    // Lane units, materialized in snapshot order.
    for (sc_index, (sc_state, _)) in state
        .stream_cores
        .iter()
        .zip(0..config.stream_cores_per_cu)
        .enumerate()
    {
        for (u, unit_state) in sc_state.iter().enumerate() {
            let upath = format!(
                "{path}.stream_cores[{sc_index}][{u}] ({})",
                unit_state.op.mnemonic()
            );
            validate_unit(unit_state, config, &upath)?;
            let unit = cu.stream_cores_mut()[sc_index].unit_mut(unit_state.op, config);
            let memo = unit.memo_mut();
            // Raw register writes first: `write` does not clear the
            // FIFO, unlike `set_enabled(false)`.
            memo.mmio_mut().write(Reg::Ctrl, unit_state.ctrl);
            memo.mmio_mut().write(Reg::Mask, unit_state.mask);
            memo.mmio_mut().write(Reg::Threshold, unit_state.threshold_bits);
            for entry in &unit_state.fifo {
                let operands: Vec<f32> =
                    entry.operand_bits.iter().map(|&b| f32::from_bits(b)).collect();
                memo.preload(Operands::from_slice(&operands), f32::from_bits(entry.result_bits));
            }
            memo.restore_stats(unit_state.stats);
            memo.set_update_after_recovery(unit_state.update_after_recovery);
            unit.fpu_mut().restore_state(
                unit_state.fpu_counters,
                unit_state.last_issue,
                unit_state.issued,
                unit_state.slip_cycles,
            );
            match (unit.gate_mut(), unit_state.gate) {
                (Some(gate), Some(gs)) => gate.restore_state(gs),
                (None, None) => {}
                (Some(_), None) => {
                    return Err(schema(&upath, "config expects adaptive-gate state, snapshot has none"));
                }
                (None, Some(_)) => {
                    return Err(schema(&upath, "snapshot carries adaptive-gate state but the config has no gate"));
                }
            }
        }
    }
    Ok(())
}

fn validate_unit(
    unit: &UnitState,
    config: &DeviceConfig,
    path: &str,
) -> Result<(), SnapshotError> {
    if unit.fifo.len() > config.fifo_depth {
        return Err(schema(
            path,
            format!(
                "{} FIFO entries exceed the configured depth {}",
                unit.fifo.len(),
                config.fifo_depth
            ),
        ));
    }
    for (i, entry) in unit.fifo.iter().enumerate() {
        let n = entry.operand_bits.len();
        if n == 0 || n > MAX_ARITY {
            return Err(schema(
                &format!("{path}.fifo[{i}]"),
                format!("operand count {n} out of range 1..={MAX_ARITY}"),
            ));
        }
    }
    Ok(())
}

fn build_series(
    state: &SeriesState,
    configured_window: u64,
    path: &str,
) -> Result<tm_obs::WindowedSeries<METRICS_CHANNELS>, SnapshotError> {
    if state.initial_width != configured_window {
        return Err(schema(
            path,
            format!(
                "series initial width {} does not match the configured metrics window {}",
                state.initial_width, configured_window
            ),
        ));
    }
    tm_obs::WindowedSeries::from_parts(
        state.initial_width,
        state.width,
        MetricsSink::MAX_WINDOWS,
        state.windows.clone(),
    )
    .ok_or_else(|| schema(path, "inconsistent windowed-series geometry"))
}

// ---------------------------------------------------------------------
// JSON encoding
// ---------------------------------------------------------------------

fn hex64(v: u64) -> String {
    format!("0x{v:x}")
}

fn hex32(v: u32) -> String {
    format!("0x{v:x}")
}

fn config_to_json(c: &DeviceConfig) -> String {
    let mut w = ObjWriter::new();
    w.u64_field("compute_units", c.compute_units as u64);
    w.u64_field("stream_cores_per_cu", c.stream_cores_per_cu as u64);
    w.u64_field("wavefront_size", c.wavefront_size as u64);
    w.str_field(
        "arch",
        match c.arch {
            ArchMode::Memoized => "memoized",
            ArchMode::Baseline => "baseline",
            ArchMode::Spatial => "spatial",
        },
    );
    w.u64_field("fifo_depth", c.fifo_depth as u64);
    w.str_field(
        "replacement",
        match c.replacement {
            Replacement::Fifo => "fifo",
            Replacement::Lru => "lru",
        },
    );
    w.raw_field("policy", &policy_to_json(c.policy));
    w.raw_field("recovery", &recovery_to_json(c.recovery));
    w.raw_field("error_mode", &error_mode_to_json(c.error_mode));
    w.raw_field("error_model", &error_model_to_json(&c.error_model));
    w.f64_field("vdd", c.vdd);
    w.raw_field("voltage_model", &voltage_model_to_json(&c.voltage_model));
    w.raw_field("energy_model", &energy_model_to_json(&c.energy_model));
    w.str_field("seed", &hex64(c.seed));
    w.u64_field("trace_depth", c.trace_depth as u64);
    match c.adaptive_gate {
        None => w.raw_field("adaptive_gate", "null"),
        Some(g) => w.raw_field("adaptive_gate", &gate_policy_to_json(g)),
    }
    w.str_field("backend", c.backend.name());
    match c.intra_cu_shards {
        None => w.raw_field("intra_cu_shards", "null"),
        Some(n) => w.u64_field("intra_cu_shards", n as u64),
    }
    w.bool_field("locality_tracking", c.locality_tracking);
    match c.metrics_window {
        None => w.raw_field("metrics_window", "null"),
        Some(n) => w.u64_field("metrics_window", n),
    }
    w.finish()
}

fn policy_to_json(p: MatchPolicy) -> String {
    let mut w = ObjWriter::new();
    match p {
        MatchPolicy::Exact => w.str_field("kind", "exact"),
        MatchPolicy::Threshold(t) => {
            w.str_field("kind", "threshold");
            // Bit pattern, not decimal: lossless for every f32.
            w.str_field("threshold_bits", &hex32(t.to_bits()));
        }
        MatchPolicy::MaskBits(mask) => {
            w.str_field("kind", "mask_bits");
            w.u64_field("mask", u64::from(mask));
        }
    }
    w.finish()
}

fn recovery_to_json(r: RecoveryPolicy) -> String {
    let mut w = ObjWriter::new();
    match r {
        RecoveryPolicy::FlushReplay { cycles_per_error } => {
            w.str_field("kind", "flush_replay");
            w.u64_field("cycles_per_error", u64::from(cycles_per_error));
        }
        RecoveryPolicy::MultipleIssueReplay { issues } => {
            w.str_field("kind", "multiple_issue_replay");
            w.u64_field("issues", u64::from(issues));
        }
        RecoveryPolicy::HalfFrequencyReplay => w.str_field("kind", "half_frequency_replay"),
        RecoveryPolicy::DecouplingQueue => w.str_field("kind", "decoupling_queue"),
    }
    w.finish()
}

fn error_mode_to_json(m: ErrorMode) -> String {
    let mut w = ObjWriter::new();
    match m {
        ErrorMode::FixedRate(rate) => {
            w.str_field("kind", "fixed_rate");
            w.f64_field("rate", rate);
        }
        ErrorMode::PerStageRate(rate) => {
            w.str_field("kind", "per_stage_rate");
            w.f64_field("rate", rate);
        }
        ErrorMode::FromVoltage => w.str_field("kind", "from_voltage"),
    }
    w.finish()
}

fn error_model_to_json(m: &ErrorModelSpec) -> String {
    let mut w = ObjWriter::new();
    w.str_field("kind", m.name());
    match m {
        ErrorModelSpec::Uniform | ErrorModelSpec::VoltageCoupled { .. } => {
            if let ErrorModelSpec::VoltageCoupled { sigma_vdd } = m {
                w.f64_field("sigma_vdd", *sigma_vdd);
            }
        }
        ErrorModelSpec::Heterogeneous(h) => {
            w.f64_field("slow_fraction", h.slow_fraction);
            w.f64_field("slow_factor", h.slow_factor);
            w.f64_field("fast_fraction", h.fast_fraction);
            w.f64_field("fast_factor", h.fast_factor);
        }
        ErrorModelSpec::Burst(b) => {
            w.f64_field("enter", b.enter);
            w.f64_field("exit", b.exit);
            w.f64_field("burst_factor", b.burst_factor);
        }
    }
    w.finish()
}

fn voltage_model_to_json(v: &VoltageModel) -> String {
    let mut w = ObjWriter::new();
    w.f64_field("nominal_vdd", v.nominal_vdd());
    w.f64_field("onset_vdd", v.onset_vdd());
    w.f64_field("base_rate", v.base_rate());
    w.f64_field("alpha", v.alpha());
    w.f64_field("vth", v.vth());
    w.finish()
}

fn energy_model_to_json(e: &EnergyModel) -> String {
    let mut w = ObjWriter::new();
    w.f64_field("epi_add_pj", e.epi_add_pj);
    w.f64_field("lut_lookup_frac", e.lut_lookup_frac);
    w.f64_field("lut_update_frac", e.lut_update_frac);
    w.f64_field("gated_stage_residual", e.gated_stage_residual);
    w.f64_field("recovery_cycle_frac", e.recovery_cycle_frac);
    w.f64_field("spatial_broadcast_frac", e.spatial_broadcast_frac);
    w.finish()
}

fn gate_policy_to_json(g: GatePolicy) -> String {
    let mut w = ObjWriter::new();
    w.u64_field("window", g.window);
    w.f64_field("min_hit_rate", g.min_hit_rate);
    w.u64_field("gate_period", g.gate_period);
    w.u64_field("consecutive_windows", u64::from(g.consecutive_windows));
    w.finish()
}

fn cu_to_json(cu: &CuState) -> String {
    let mut w = ObjWriter::new();
    w.u64_field("cycles", cu.cycles);
    {
        let mut e = ObjWriter::new();
        e.u64_field("recoveries", cu.ecu_recoveries);
        e.u64_field("recovery_cycles", cu.ecu_recovery_cycles);
        w.raw_field("ecu", &e.finish());
    }
    let injectors: Vec<String> = cu
        .injectors
        .iter()
        .map(|s| {
            let mut i = ObjWriter::new();
            i.str_field("pcg_state", &hex64(s.pcg_state));
            i.str_field("pcg_inc", &hex64(s.pcg_inc));
            i.u64_field("drawn", s.drawn);
            i.u64_field("errors", s.errors);
            match s.burst_bad {
                None => i.raw_field("burst_bad", "null"),
                Some(b) => i.bool_field("burst_bad", b),
            }
            i.finish()
        })
        .collect();
    w.raw_field("injectors", &format!("[{}]", injectors.join(",")));
    let tallies: Vec<String> = cu
        .tallies
        .iter()
        .map(|(op, t)| {
            let mut o = ObjWriter::new();
            o.str_field("op", op.mnemonic());
            o.u64_field("lane_instructions", t.lane_instructions);
            o.u64_field("vector_instructions", t.vector_instructions);
            o.u64_field("spatial_hits", t.spatial_hits);
            o.u64_field("spatial_masked_errors", t.spatial_masked_errors);
            o.f64_field("energy_pj", t.energy_pj);
            o.finish()
        })
        .collect();
    w.raw_field("tallies", &format!("[{}]", tallies.join(",")));
    {
        let b = &cu.energy;
        let mut e = ObjWriter::new();
        e.f64_field("fpu_exec_pj", b.fpu_exec_pj);
        e.f64_field("hit_pj", b.hit_pj);
        e.f64_field("lut_lookup_pj", b.lut_lookup_pj);
        e.f64_field("lut_update_pj", b.lut_update_pj);
        e.f64_field("recovery_pj", b.recovery_pj);
        w.raw_field("energy", &e.finish());
    }
    match &cu.metrics {
        None => w.raw_field("metrics", "null"),
        Some(m) => {
            let mut o = ObjWriter::new();
            o.raw_field("total", &series_to_json(&m.total));
            let per_op: Vec<String> = m
                .per_op
                .iter()
                .map(|(op, s)| {
                    let mut p = ObjWriter::new();
                    p.str_field("op", op.mnemonic());
                    p.raw_field("series", &series_to_json(s));
                    p.finish()
                })
                .collect();
            o.raw_field("per_op", &format!("[{}]", per_op.join(",")));
            w.raw_field("metrics", &o.finish());
        }
    }
    let scs: Vec<String> = cu
        .stream_cores
        .iter()
        .map(|units| {
            let us: Vec<String> = units.iter().map(unit_to_json).collect();
            format!("[{}]", us.join(","))
        })
        .collect();
    w.raw_field("stream_cores", &format!("[{}]", scs.join(",")));
    w.finish()
}

fn series_to_json(s: &SeriesState) -> String {
    let mut w = ObjWriter::new();
    w.u64_field("initial_width", s.initial_width);
    w.u64_field("width", s.width);
    let windows: Vec<String> = s.windows.iter().map(|win| f64_array(&win[..])).collect();
    w.raw_field("windows", &format!("[{}]", windows.join(",")));
    w.finish()
}

fn unit_to_json(u: &UnitState) -> String {
    let mut w = ObjWriter::new();
    w.str_field("op", u.op.mnemonic());
    {
        let mut m = ObjWriter::new();
        m.u64_field("ctrl", u64::from(u.ctrl));
        m.u64_field("mask", u64::from(u.mask));
        m.str_field("threshold_bits", &hex32(u.threshold_bits));
        w.raw_field("mmio", &m.finish());
    }
    w.bool_field("update_after_recovery", u.update_after_recovery);
    {
        let s = &u.stats;
        let mut o = ObjWriter::new();
        o.u64_field("lookups", s.lookups);
        o.u64_field("hits", s.hits);
        o.u64_field("misses", s.misses);
        o.u64_field("updates", s.updates);
        o.u64_field("masked_errors", s.masked_errors);
        o.u64_field("recoveries", s.recoveries);
        o.u64_field("errors_seen", s.errors_seen);
        w.raw_field("stats", &o.finish());
    }
    let fifo: Vec<String> = u
        .fifo
        .iter()
        .map(|e| {
            let mut o = ObjWriter::new();
            let operands: Vec<String> = e.operand_bits.iter().map(|&b| hex32(b)).collect();
            o.raw_field("operands", &str_array(&operands));
            o.str_field("result", &hex32(e.result_bits));
            o.finish()
        })
        .collect();
    w.raw_field("fifo", &format!("[{}]", fifo.join(",")));
    {
        let mut f = ObjWriter::new();
        f.u64_field("executed", u.fpu_counters.executed);
        f.u64_field("squashed", u.fpu_counters.squashed);
        match u.last_issue {
            None => f.raw_field("last_issue", "null"),
            Some(c) => f.u64_field("last_issue", c),
        }
        f.u64_field("issued", u.issued);
        f.u64_field("slip_cycles", u.slip_cycles);
        w.raw_field("fpu", &f.finish());
    }
    match u.gate {
        None => w.raw_field("gate", "null"),
        Some(g) => {
            let mut o = ObjWriter::new();
            o.u64_field("window_accesses", g.window_accesses);
            o.u64_field("window_hits", g.window_hits);
            o.u64_field("gated_remaining", g.gated_remaining);
            o.u64_field("times_gated", g.times_gated);
            o.u64_field("low_windows", u64::from(g.low_windows));
            w.raw_field("gate", &o.finish());
        }
    }
    w.finish()
}

// ---------------------------------------------------------------------
// JSON decoding
// ---------------------------------------------------------------------

fn want<'a>(v: &'a JsonValue, path: &str, key: &str) -> Result<&'a JsonValue, SnapshotError> {
    v.get(key)
        .ok_or_else(|| schema(path, format!("missing field `{key}`")))
}

fn want_u64(v: &JsonValue, path: &str, key: &str) -> Result<u64, SnapshotError> {
    want(v, path, key)?
        .as_u64()
        .ok_or_else(|| schema(path, format!("field `{key}` must be a non-negative integer")))
}

fn want_u32(v: &JsonValue, path: &str, key: &str) -> Result<u32, SnapshotError> {
    u32::try_from(want_u64(v, path, key)?)
        .map_err(|_| schema(path, format!("field `{key}` exceeds 32 bits")))
}

fn want_usize(v: &JsonValue, path: &str, key: &str) -> Result<usize, SnapshotError> {
    usize::try_from(want_u64(v, path, key)?)
        .map_err(|_| schema(path, format!("field `{key}` does not fit in usize")))
}

fn want_f64(v: &JsonValue, path: &str, key: &str) -> Result<f64, SnapshotError> {
    let x = want(v, path, key)?
        .as_f64()
        .ok_or_else(|| schema(path, format!("field `{key}` must be a number")))?;
    if !x.is_finite() {
        return Err(schema(path, format!("field `{key}` must be finite")));
    }
    Ok(x)
}

fn want_bool(v: &JsonValue, path: &str, key: &str) -> Result<bool, SnapshotError> {
    want(v, path, key)?
        .as_bool()
        .ok_or_else(|| schema(path, format!("field `{key}` must be a boolean")))
}

fn want_str<'a>(v: &'a JsonValue, path: &str, key: &str) -> Result<&'a str, SnapshotError> {
    want(v, path, key)?
        .as_str()
        .ok_or_else(|| schema(path, format!("field `{key}` must be a string")))
}

fn want_arr<'a>(v: &'a JsonValue, path: &str, key: &str) -> Result<&'a [JsonValue], SnapshotError> {
    want(v, path, key)?
        .as_arr()
        .ok_or_else(|| schema(path, format!("field `{key}` must be an array")))
}

fn parse_hex(s: &str, path: &str, key: &str) -> Result<u64, SnapshotError> {
    s.strip_prefix("0x")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| {
            schema(
                path,
                format!("field `{key}` must be a 0x-prefixed hex string, got \"{s}\""),
            )
        })
}

fn want_hex64(v: &JsonValue, path: &str, key: &str) -> Result<u64, SnapshotError> {
    parse_hex(want_str(v, path, key)?, path, key)
}

fn want_hex32(v: &JsonValue, path: &str, key: &str) -> Result<u32, SnapshotError> {
    u32::try_from(want_hex64(v, path, key)?)
        .map_err(|_| schema(path, format!("field `{key}` exceeds 32 bits")))
}

/// A `null`-able u64 field (the key must still be present).
fn opt_u64(v: &JsonValue, path: &str, key: &str) -> Result<Option<u64>, SnapshotError> {
    match want(v, path, key)? {
        JsonValue::Null => Ok(None),
        x => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| schema(path, format!("field `{key}` must be null or an integer"))),
    }
}

fn unit_interval(x: f64, path: &str, key: &str) -> Result<f64, SnapshotError> {
    if !(0.0..=1.0).contains(&x) {
        return Err(schema(path, format!("field `{key}` must lie in [0, 1], got {x}")));
    }
    Ok(x)
}

fn non_negative(x: f64, path: &str, key: &str) -> Result<f64, SnapshotError> {
    if x < 0.0 {
        return Err(schema(path, format!("field `{key}` must be non-negative, got {x}")));
    }
    Ok(x)
}

fn parse_op(s: &str, path: &str) -> Result<FpOp, SnapshotError> {
    ALL_OPS
        .iter()
        .copied()
        .find(|op| op.mnemonic() == s)
        .ok_or_else(|| schema(path, format!("unknown opcode mnemonic \"{s}\"")))
}

fn config_from_json(v: &JsonValue) -> Result<DeviceConfig, SnapshotError> {
    let p = "$.config";
    let arch = match want_str(v, p, "arch")? {
        "memoized" => ArchMode::Memoized,
        "baseline" => ArchMode::Baseline,
        "spatial" => ArchMode::Spatial,
        other => return Err(schema(p, format!("unknown arch \"{other}\""))),
    };
    let replacement = match want_str(v, p, "replacement")? {
        "fifo" => Replacement::Fifo,
        "lru" => Replacement::Lru,
        other => return Err(schema(p, format!("unknown replacement policy \"{other}\""))),
    };
    let backend = match want_str(v, p, "backend")? {
        "sequential" => ExecBackend::Sequential,
        "parallel" => ExecBackend::Parallel,
        "intra-cu" => ExecBackend::IntraCu,
        other => return Err(schema(p, format!("unknown backend \"{other}\""))),
    };
    let policy = policy_from_json(want(v, p, "policy")?)?;
    let recovery = recovery_from_json(want(v, p, "recovery")?)?;
    let error_mode = error_mode_from_json(want(v, p, "error_mode")?)?;
    let error_model = error_model_from_json(want(v, p, "error_model")?)?;
    let voltage_model = voltage_model_from_json(want(v, p, "voltage_model")?)?;
    let energy_model = energy_model_from_json(want(v, p, "energy_model")?)?;
    let adaptive_gate = match want(v, p, "adaptive_gate")? {
        JsonValue::Null => None,
        g => Some(gate_policy_from_json(g)?),
    };
    let intra_cu_shards = match opt_u64(v, p, "intra_cu_shards")? {
        None => None,
        Some(n) => Some(
            usize::try_from(n)
                .map_err(|_| schema(p, "field `intra_cu_shards` does not fit in usize"))?,
        ),
    };
    Ok(DeviceConfig {
        compute_units: want_usize(v, p, "compute_units")?,
        stream_cores_per_cu: want_usize(v, p, "stream_cores_per_cu")?,
        wavefront_size: want_usize(v, p, "wavefront_size")?,
        arch,
        fifo_depth: want_usize(v, p, "fifo_depth")?,
        replacement,
        policy,
        recovery,
        error_mode,
        error_model,
        vdd: want_f64(v, p, "vdd")?,
        voltage_model,
        energy_model,
        seed: want_hex64(v, p, "seed")?,
        trace_depth: want_usize(v, p, "trace_depth")?,
        adaptive_gate,
        backend,
        intra_cu_shards,
        locality_tracking: want_bool(v, p, "locality_tracking")?,
        metrics_window: opt_u64(v, p, "metrics_window")?,
    })
}

fn policy_from_json(v: &JsonValue) -> Result<MatchPolicy, SnapshotError> {
    let p = "$.config.policy";
    match want_str(v, p, "kind")? {
        "exact" => Ok(MatchPolicy::Exact),
        "threshold" => {
            let t = f32::from_bits(want_hex32(v, p, "threshold_bits")?);
            if !t.is_finite() || t < 0.0 {
                return Err(schema(p, format!("threshold must be finite and non-negative, got {t}")));
            }
            Ok(MatchPolicy::Threshold(t))
        }
        "mask_bits" => Ok(MatchPolicy::MaskBits(want_u32(v, p, "mask")?)),
        other => Err(schema(p, format!("unknown policy kind \"{other}\""))),
    }
}

fn recovery_from_json(v: &JsonValue) -> Result<RecoveryPolicy, SnapshotError> {
    let p = "$.config.recovery";
    match want_str(v, p, "kind")? {
        "flush_replay" => Ok(RecoveryPolicy::FlushReplay {
            cycles_per_error: want_u32(v, p, "cycles_per_error")?,
        }),
        "multiple_issue_replay" => Ok(RecoveryPolicy::MultipleIssueReplay {
            issues: want_u32(v, p, "issues")?,
        }),
        "half_frequency_replay" => Ok(RecoveryPolicy::HalfFrequencyReplay),
        "decoupling_queue" => Ok(RecoveryPolicy::DecouplingQueue),
        other => Err(schema(p, format!("unknown recovery kind \"{other}\""))),
    }
}

fn error_mode_from_json(v: &JsonValue) -> Result<ErrorMode, SnapshotError> {
    let p = "$.config.error_mode";
    match want_str(v, p, "kind")? {
        "fixed_rate" => Ok(ErrorMode::FixedRate(unit_interval(
            want_f64(v, p, "rate")?,
            p,
            "rate",
        )?)),
        "per_stage_rate" => Ok(ErrorMode::PerStageRate(unit_interval(
            want_f64(v, p, "rate")?,
            p,
            "rate",
        )?)),
        "from_voltage" => Ok(ErrorMode::FromVoltage),
        other => Err(schema(p, format!("unknown error-mode kind \"{other}\""))),
    }
}

fn error_model_from_json(v: &JsonValue) -> Result<ErrorModelSpec, SnapshotError> {
    let p = "$.config.error_model";
    match want_str(v, p, "kind")? {
        "uniform" => Ok(ErrorModelSpec::Uniform),
        "heterogeneous" => Ok(ErrorModelSpec::Heterogeneous(HeterogeneousErrors {
            slow_fraction: unit_interval(want_f64(v, p, "slow_fraction")?, p, "slow_fraction")?,
            slow_factor: non_negative(want_f64(v, p, "slow_factor")?, p, "slow_factor")?,
            fast_fraction: unit_interval(want_f64(v, p, "fast_fraction")?, p, "fast_fraction")?,
            fast_factor: non_negative(want_f64(v, p, "fast_factor")?, p, "fast_factor")?,
        })),
        "voltage-coupled" => Ok(ErrorModelSpec::VoltageCoupled {
            sigma_vdd: non_negative(want_f64(v, p, "sigma_vdd")?, p, "sigma_vdd")?,
        }),
        "burst" => Ok(ErrorModelSpec::Burst(BurstErrors {
            enter: unit_interval(want_f64(v, p, "enter")?, p, "enter")?,
            exit: unit_interval(want_f64(v, p, "exit")?, p, "exit")?,
            burst_factor: non_negative(want_f64(v, p, "burst_factor")?, p, "burst_factor")?,
        })),
        other => Err(schema(p, format!("unknown error-model kind \"{other}\""))),
    }
}

fn voltage_model_from_json(v: &JsonValue) -> Result<VoltageModel, SnapshotError> {
    let p = "$.config.voltage_model";
    let nominal = want_f64(v, p, "nominal_vdd")?;
    let onset = want_f64(v, p, "onset_vdd")?;
    let base_rate = unit_interval(want_f64(v, p, "base_rate")?, p, "base_rate")?;
    let alpha = non_negative(want_f64(v, p, "alpha")?, p, "alpha")?;
    let vth = want_f64(v, p, "vth")?;
    // Mirror `VoltageModel::new`'s assertions so malformed input becomes
    // a structured error instead of a panic.
    if nominal <= 0.0 || onset <= 0.0 {
        return Err(schema(p, "voltages must be positive"));
    }
    if onset > nominal {
        return Err(schema(p, "error onset must not exceed the nominal voltage"));
    }
    if !(0.0..onset).contains(&vth) {
        return Err(schema(p, format!("vth must lie in [0, onset), got {vth}")));
    }
    Ok(VoltageModel::new(nominal, onset, base_rate, alpha, vth))
}

fn energy_model_from_json(v: &JsonValue) -> Result<EnergyModel, SnapshotError> {
    let p = "$.config.energy_model";
    let field = |key| -> Result<f64, SnapshotError> { non_negative(want_f64(v, p, key)?, p, key) };
    Ok(EnergyModel {
        epi_add_pj: field("epi_add_pj")?,
        lut_lookup_frac: field("lut_lookup_frac")?,
        lut_update_frac: field("lut_update_frac")?,
        gated_stage_residual: field("gated_stage_residual")?,
        recovery_cycle_frac: field("recovery_cycle_frac")?,
        spatial_broadcast_frac: field("spatial_broadcast_frac")?,
    })
}

fn gate_policy_from_json(v: &JsonValue) -> Result<GatePolicy, SnapshotError> {
    let p = "$.config.adaptive_gate";
    let policy = GatePolicy {
        window: want_u64(v, p, "window")?,
        min_hit_rate: unit_interval(want_f64(v, p, "min_hit_rate")?, p, "min_hit_rate")?,
        gate_period: want_u64(v, p, "gate_period")?,
        consecutive_windows: want_u32(v, p, "consecutive_windows")?,
    };
    // `AdaptiveGate::new` asserts these; reject them structurally.
    if policy.window == 0 || policy.gate_period == 0 || policy.consecutive_windows == 0 {
        return Err(schema(p, "window, gate_period and consecutive_windows must be positive"));
    }
    Ok(policy)
}

fn cu_from_json(
    v: &JsonValue,
    path: &str,
    config: &DeviceConfig,
) -> Result<CuState, SnapshotError> {
    let ecu = want(v, path, "ecu")?;
    let epath = format!("{path}.ecu");
    let injectors_json = want_arr(v, path, "injectors")?;
    let mut injectors = Vec::with_capacity(injectors_json.len());
    for (i, inj) in injectors_json.iter().enumerate() {
        let ipath = format!("{path}.injectors[{i}]");
        let burst_bad = match want(inj, &ipath, "burst_bad")? {
            JsonValue::Null => None,
            b => Some(b.as_bool().ok_or_else(|| {
                schema(&ipath, "field `burst_bad` must be null or a boolean")
            })?),
        };
        let state = ErrorSamplerState {
            pcg_state: want_hex64(inj, &ipath, "pcg_state")?,
            pcg_inc: want_hex64(inj, &ipath, "pcg_inc")?,
            drawn: want_u64(inj, &ipath, "drawn")?,
            errors: want_u64(inj, &ipath, "errors")?,
            burst_bad,
        };
        if state.pcg_inc.is_multiple_of(2) {
            return Err(schema(&ipath, "PCG increment must be odd"));
        }
        injectors.push(state);
    }
    let tallies_json = want_arr(v, path, "tallies")?;
    let mut tallies = Vec::with_capacity(tallies_json.len());
    for (i, t) in tallies_json.iter().enumerate() {
        let tpath = format!("{path}.tallies[{i}]");
        let op = parse_op(want_str(t, &tpath, "op")?, &tpath)?;
        let energy_pj = non_negative(want_f64(t, &tpath, "energy_pj")?, &tpath, "energy_pj")?;
        tallies.push((
            op,
            OpTally {
                lane_instructions: want_u64(t, &tpath, "lane_instructions")?,
                vector_instructions: want_u64(t, &tpath, "vector_instructions")?,
                spatial_hits: want_u64(t, &tpath, "spatial_hits")?,
                spatial_masked_errors: want_u64(t, &tpath, "spatial_masked_errors")?,
                energy_pj,
            },
        ));
    }
    let energy_json = want(v, path, "energy")?;
    let gpath = format!("{path}.energy");
    let energy = EnergyBreakdown {
        fpu_exec_pj: want_f64(energy_json, &gpath, "fpu_exec_pj")?,
        hit_pj: want_f64(energy_json, &gpath, "hit_pj")?,
        lut_lookup_pj: want_f64(energy_json, &gpath, "lut_lookup_pj")?,
        lut_update_pj: want_f64(energy_json, &gpath, "lut_update_pj")?,
        recovery_pj: want_f64(energy_json, &gpath, "recovery_pj")?,
    };
    let metrics = match want(v, path, "metrics")? {
        JsonValue::Null => None,
        m => {
            let mpath = format!("{path}.metrics");
            let total = series_from_json(want(m, &mpath, "total")?, &format!("{mpath}.total"))?;
            let per_op_json = want_arr(m, &mpath, "per_op")?;
            let mut per_op = Vec::with_capacity(per_op_json.len());
            for (i, entry) in per_op_json.iter().enumerate() {
                let ppath = format!("{mpath}.per_op[{i}]");
                let op = parse_op(want_str(entry, &ppath, "op")?, &ppath)?;
                let series = series_from_json(want(entry, &ppath, "series")?, &ppath)?;
                per_op.push((op, series));
            }
            Some(MetricsState { total, per_op })
        }
    };
    let scs_json = want_arr(v, path, "stream_cores")?;
    let mut stream_cores = Vec::with_capacity(scs_json.len());
    for (s, sc) in scs_json.iter().enumerate() {
        let spath = format!("{path}.stream_cores[{s}]");
        let units_json = sc
            .as_arr()
            .ok_or_else(|| schema(&spath, "stream core must be an array of lane units"))?;
        let mut units = Vec::with_capacity(units_json.len());
        for (u, unit) in units_json.iter().enumerate() {
            units.push(unit_from_json(unit, &format!("{spath}[{u}]"), config)?);
        }
        stream_cores.push(units);
    }
    Ok(CuState {
        cycles: want_u64(v, path, "cycles")?,
        ecu_recoveries: want_u64(ecu, &epath, "recoveries")?,
        ecu_recovery_cycles: want_u64(ecu, &epath, "recovery_cycles")?,
        injectors,
        tallies,
        energy,
        metrics,
        stream_cores,
    })
}

fn series_from_json(v: &JsonValue, path: &str) -> Result<SeriesState, SnapshotError> {
    let windows_json = want_arr(v, path, "windows")?;
    let mut windows = Vec::with_capacity(windows_json.len());
    for (i, win) in windows_json.iter().enumerate() {
        let arr = win.as_arr().ok_or_else(|| {
            schema(path, format!("windows[{i}] must be an array of {METRICS_CHANNELS} numbers"))
        })?;
        if arr.len() != METRICS_CHANNELS {
            return Err(schema(
                path,
                format!("windows[{i}] has {} channels, expected {METRICS_CHANNELS}", arr.len()),
            ));
        }
        let mut channels = [0.0; METRICS_CHANNELS];
        for (c, x) in arr.iter().enumerate() {
            channels[c] = x
                .as_f64()
                .filter(|v| v.is_finite())
                .ok_or_else(|| schema(path, format!("windows[{i}][{c}] must be a finite number")))?;
        }
        windows.push(channels);
    }
    Ok(SeriesState {
        initial_width: want_u64(v, path, "initial_width")?,
        width: want_u64(v, path, "width")?,
        windows,
    })
}

fn unit_from_json(
    v: &JsonValue,
    path: &str,
    config: &DeviceConfig,
) -> Result<UnitState, SnapshotError> {
    let op = parse_op(want_str(v, path, "op")?, path)?;
    let mmio = want(v, path, "mmio")?;
    let mpath = format!("{path}.mmio");
    let stats_json = want(v, path, "stats")?;
    let spath = format!("{path}.stats");
    let stats = MemoStats {
        lookups: want_u64(stats_json, &spath, "lookups")?,
        hits: want_u64(stats_json, &spath, "hits")?,
        misses: want_u64(stats_json, &spath, "misses")?,
        updates: want_u64(stats_json, &spath, "updates")?,
        masked_errors: want_u64(stats_json, &spath, "masked_errors")?,
        recoveries: want_u64(stats_json, &spath, "recoveries")?,
        errors_seen: want_u64(stats_json, &spath, "errors_seen")?,
    };
    let fifo_json = want_arr(v, path, "fifo")?;
    if fifo_json.len() > config.fifo_depth {
        return Err(schema(
            path,
            format!("{} FIFO entries exceed the configured depth {}", fifo_json.len(), config.fifo_depth),
        ));
    }
    let mut fifo = Vec::with_capacity(fifo_json.len());
    for (i, entry) in fifo_json.iter().enumerate() {
        let fpath = format!("{path}.fifo[{i}]");
        let operands_json = want_arr(entry, &fpath, "operands")?;
        if operands_json.is_empty() || operands_json.len() > MAX_ARITY {
            return Err(schema(
                &fpath,
                format!("operand count {} out of range 1..={MAX_ARITY}", operands_json.len()),
            ));
        }
        let mut operand_bits = Vec::with_capacity(operands_json.len());
        for (o, word) in operands_json.iter().enumerate() {
            let s = word.as_str().ok_or_else(|| {
                schema(&fpath, format!("operands[{o}] must be a hex string"))
            })?;
            let bits = u32::try_from(parse_hex(s, &fpath, "operands")?)
                .map_err(|_| schema(&fpath, format!("operands[{o}] exceeds 32 bits")))?;
            operand_bits.push(bits);
        }
        fifo.push(EntryState {
            operand_bits,
            result_bits: want_hex32(entry, &fpath, "result")?,
        });
    }
    let fpu = want(v, path, "fpu")?;
    let fpath = format!("{path}.fpu");
    let gate = match want(v, path, "gate")? {
        JsonValue::Null => None,
        g => {
            let gpath = format!("{path}.gate");
            Some(GateState {
                window_accesses: want_u64(g, &gpath, "window_accesses")?,
                window_hits: want_u64(g, &gpath, "window_hits")?,
                gated_remaining: want_u64(g, &gpath, "gated_remaining")?,
                times_gated: want_u64(g, &gpath, "times_gated")?,
                low_windows: want_u32(g, &gpath, "low_windows")?,
            })
        }
    };
    Ok(UnitState {
        op,
        ctrl: want_u32(mmio, &mpath, "ctrl")?,
        mask: want_u32(mmio, &mpath, "mask")?,
        threshold_bits: want_hex32(mmio, &mpath, "threshold_bits")?,
        update_after_recovery: want_bool(v, path, "update_after_recovery")?,
        stats,
        fifo,
        fpu_counters: FpuCounters {
            executed: want_u64(fpu, &fpath, "executed")?,
            squashed: want_u64(fpu, &fpath, "squashed")?,
        },
        last_issue: opt_u64(fpu, &fpath, "last_issue")?,
        issued: want_u64(fpu, &fpath, "issued")?,
        slip_cycles: want_u64(fpu, &fpath, "slip_cycles")?,
        gate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use crate::wave::WaveCtx;

    struct Mix {
        out: Vec<f32>,
    }

    impl Kernel for Mix {
        fn name(&self) -> &'static str {
            "mix"
        }
        fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
            let x = ctx.iota();
            let half = ctx.splat(0.5);
            let y = ctx.mul(&x, &half);
            let z = ctx.add(&y, &half);
            let r = ctx.sqrt(&z);
            for (l, &gid) in ctx.lane_ids().to_vec().iter().enumerate() {
                self.out[gid] = r[l];
            }
        }
    }

    fn run_some(device: &mut Device, n: usize) {
        let mut k = Mix { out: vec![0.0; n] };
        device.run(&mut k, n);
    }

    fn busy_config() -> DeviceConfig {
        DeviceConfig::builder()
            .with_error_mode(ErrorMode::FixedRate(0.05))
            .with_seed(0xBEEF)
            .build()
            .unwrap()
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut device = Device::new(busy_config());
        run_some(&mut device, 257);
        let snap = device.snapshot().unwrap();
        let json = snap.to_json();
        let parsed = DeviceSnapshot::from_json(&json).unwrap();
        assert_eq!(snap, parsed);
        assert_eq!(json, parsed.to_json());
    }

    #[test]
    fn restored_device_resnapshots_identically() {
        let mut device = Device::new(busy_config());
        run_some(&mut device, 300);
        let snap = device.snapshot().unwrap();
        let restored = Device::restore(&snap).unwrap();
        assert_eq!(restored.snapshot().unwrap().to_json(), snap.to_json());
    }

    #[test]
    fn restored_device_continues_bit_identically() {
        let mut original = Device::new(busy_config());
        run_some(&mut original, 200);
        let snap = original.snapshot().unwrap();
        let mut restored = Device::restore(&snap).unwrap();
        run_some(&mut original, 200);
        run_some(&mut restored, 200);
        assert_eq!(
            original.snapshot().unwrap().to_json(),
            restored.snapshot().unwrap().to_json()
        );
    }

    #[test]
    fn exotic_config_round_trips() {
        let config = DeviceConfig::builder()
            .with_policy(MatchPolicy::threshold(0.25))
            .with_error_mode(ErrorMode::PerStageRate(0.002))
            .with_adaptive_gate(GatePolicy::break_even())
            .build()
            .unwrap();
        let mut config = config;
        config.error_model = ErrorModelSpec::Burst(BurstErrors::droop());
        config.metrics_window = Some(64);
        config.check().unwrap();
        let mut device = Device::new(config.clone());
        run_some(&mut device, 500);
        let snap = device.snapshot().unwrap();
        let parsed = DeviceSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed.config(), &config);
        let restored = Device::restore(&parsed).unwrap();
        assert_eq!(restored.snapshot().unwrap().to_json(), snap.to_json());
    }

    #[test]
    fn preload_fifos_warms_without_touching_counters() {
        let mut donor = Device::new(busy_config());
        run_some(&mut donor, 300);
        let snap = donor.snapshot().unwrap();

        let mut warm = Device::new(busy_config());
        warm.preload_fifos(&snap);
        assert_eq!(warm.report().wavefronts, 0, "warm start must not fake history");
        assert_eq!(warm.report().total_energy_pj(), 0.0);

        // The warmed device carries the donor's exact FIFO contents.
        let ws = warm.snapshot().unwrap();
        for (wc, dc) in ws.cus.iter().zip(&snap.cus) {
            assert_eq!(wc.cycles, 0);
            for (wsc, dsc) in wc.stream_cores.iter().zip(&dc.stream_cores) {
                assert_eq!(wsc.len(), dsc.len());
                for (wu, du) in wsc.iter().zip(dsc) {
                    assert_eq!(wu.op, du.op);
                    assert_eq!(wu.fifo, du.fifo);
                    assert_eq!(wu.stats, MemoStats::default());
                }
            }
        }
    }

    #[test]
    fn locality_tracking_is_unsupported() {
        let config = DeviceConfig {
            locality_tracking: true,
            ..DeviceConfig::default()
        };
        let device = Device::new(config);
        assert!(matches!(
            device.snapshot(),
            Err(SnapshotError::Unsupported(_))
        ));
    }

    #[test]
    fn malformed_documents_yield_structured_errors() {
        let mut device = Device::new(busy_config());
        run_some(&mut device, 64);
        let good = device.snapshot().unwrap().to_json();

        // Truncations at every eighth byte must never panic.
        for cut in (0..good.len()).step_by(8) {
            assert!(DeviceSnapshot::from_json(&good[..cut]).is_err());
        }
        assert!(matches!(
            DeviceSnapshot::from_json("not json at all"),
            Err(SnapshotError::Json(_))
        ));
        assert!(matches!(
            DeviceSnapshot::from_json("{}"),
            Err(SnapshotError::Schema(_))
        ));
        let wrong_kind = good.replacen(SNAPSHOT_KIND, "something-else", 1);
        assert!(matches!(
            DeviceSnapshot::from_json(&wrong_kind),
            Err(SnapshotError::Schema(_))
        ));
        let wrong_version = good.replacen("\"version\":1", "\"version\":99", 1);
        assert!(matches!(
            DeviceSnapshot::from_json(&wrong_version),
            Err(SnapshotError::Version { found: 99 })
        ));
        // An even PCG increment is structurally invalid.
        let snap = device.snapshot().unwrap();
        let inc = snap.cus[0].injectors[0].pcg_inc;
        let bad_inc = good.replacen(&hex64(inc), &hex64(inc & !1), 1);
        assert!(matches!(
            DeviceSnapshot::from_json(&bad_inc),
            Err(SnapshotError::Schema(_))
        ));
        // A config the builder rejects surfaces as a Config error.
        let bad_config = good.replacen("\"compute_units\":2", "\"compute_units\":0", 1);
        assert!(matches!(
            DeviceSnapshot::from_json(&bad_config),
            Err(SnapshotError::Config(ConfigError::NoComputeUnits))
        ));
    }

    #[test]
    fn mismatched_geometry_is_rejected() {
        let mut device = Device::new(busy_config());
        run_some(&mut device, 64);
        let good = device.snapshot().unwrap().to_json();
        // Claim one CU while shipping two: the array length check fires.
        let shrunk = good.replacen("\"compute_units\":2", "\"compute_units\":1", 1);
        assert!(matches!(
            DeviceSnapshot::from_json(&shrunk),
            Err(SnapshotError::Schema(_))
        ));
    }
}
