//! Stream cores and their per-opcode lane units.

use crate::config::{ArchMode, DeviceConfig};
use std::collections::BTreeMap;
use tm_core::{AccessOutcome, AdaptiveGate, MemoFifo, MemoModule};
use tm_fpu::{Fpu, FpOp, Operands};

/// One FPU plus its tightly coupled memoization module.
#[derive(Debug, Clone)]
pub struct LaneUnit {
    fpu: Fpu,
    memo: MemoModule,
    gate: Option<AdaptiveGate>,
}

impl LaneUnit {
    /// Builds the unit for `op` according to the device configuration.
    #[must_use]
    pub fn new(op: FpOp, config: &DeviceConfig) -> Self {
        let fifo = MemoFifo::with_replacement(config.fifo_depth, config.replacement);
        let mut memo = MemoModule::with_fifo(op, config.policy, fifo);
        let mut gate = None;
        if config.arch == ArchMode::Memoized {
            gate = config.adaptive_gate.map(AdaptiveGate::new);
        } else {
            // Baseline has no memoization hardware; the spatial variant
            // reuses across lanes instead of through per-FPU FIFOs.
            memo.set_enabled(false);
        }
        Self {
            fpu: Fpu::new(op),
            memo,
            gate,
        }
    }

    /// The adaptive gate controller, if configured.
    #[must_use]
    pub const fn gate(&self) -> Option<&AdaptiveGate> {
        self.gate.as_ref()
    }

    /// The memoization module.
    #[must_use]
    pub const fn memo(&self) -> &MemoModule {
        &self.memo
    }

    /// The functional unit.
    #[must_use]
    pub const fn fpu(&self) -> &Fpu {
        &self.fpu
    }

    /// Mutable memoization-module access for the snapshot restore path.
    pub(crate) fn memo_mut(&mut self) -> &mut MemoModule {
        &mut self.memo
    }

    /// Mutable FPU access for the snapshot restore path.
    pub(crate) fn fpu_mut(&mut self) -> &mut Fpu {
        &mut self.fpu
    }

    /// Mutable gate-controller access for the snapshot restore path.
    pub(crate) fn gate_mut(&mut self) -> Option<&mut AdaptiveGate> {
        self.gate.as_mut()
    }

    /// Clock-gates the FPU for a result supplied from outside the unit
    /// (spatial, cross-lane reuse). Counts as a squashed instruction.
    pub fn squash_for_reuse(&mut self, now: u64) {
        self.fpu.squash(now);
    }

    /// Resets the memoization statistics, keeping the FIFO contents.
    pub fn reset_stats(&mut self) {
        self.memo.reset_stats();
    }

    /// Issues one instruction at cycle `now`; `error` is the EDS verdict.
    ///
    /// Returns the Table-2 outcome. Pipeline occupancy and FPU counters are
    /// updated on the appropriate path (squash on hits, full execution on
    /// misses and in the baseline).
    pub fn issue(&mut self, operands: Operands, error: bool, now: u64) -> AccessOutcome {
        let op = self.fpu.op();
        // Adaptive power gating: trip / probe per the controller's state.
        if let Some(gate) = &mut self.gate {
            if gate.should_bypass() {
                gate.observe_bypass();
                if self.memo.is_enabled() {
                    self.memo.set_enabled(false);
                }
            } else if !self.memo.is_enabled() {
                self.memo.set_enabled(true);
            }
        }
        let outcome = self
            .memo
            .access(operands, || tm_fpu::compute(op, operands), error);
        if let Some(gate) = &mut self.gate {
            if !outcome.bypassed {
                gate.observe_access(outcome.hit);
            }
        }
        if outcome.hit {
            self.fpu.squash(now);
        } else {
            // The miss path already ran the functional model once (inside
            // the memo probe closure); only account for the execution.
            self.fpu.commit_executed(now);
            debug_assert_eq!(
                tm_fpu::compute(op, operands).to_bits(),
                outcome.result.to_bits()
            );
            if outcome.recovered {
                self.fpu.flush();
            }
        }
        outcome
    }
}

/// A stream core: one SIMD lane of a compute unit, holding a private
/// [`LaneUnit`] — and therefore a private memoization FIFO — per opcode,
/// the granularity at which the paper measures value locality.
#[derive(Debug, Clone, Default)]
pub struct StreamCore {
    units: BTreeMap<FpOp, LaneUnit>,
}

impl StreamCore {
    /// An empty stream core; units materialize on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The lane unit for `op`, creating it on first use.
    pub fn unit_mut(&mut self, op: FpOp, config: &DeviceConfig) -> &mut LaneUnit {
        self.units
            .entry(op)
            .or_insert_with(|| LaneUnit::new(op, config))
    }

    /// The lane unit for `op`, if this core ever executed one.
    #[must_use]
    pub fn unit(&self, op: FpOp) -> Option<&LaneUnit> {
        self.units.get(&op)
    }

    /// Iterates over the instantiated (activated) units.
    pub fn units(&self) -> impl Iterator<Item = (&FpOp, &LaneUnit)> {
        self.units.iter()
    }

    /// Resets every unit's memoization statistics (FIFO contents are
    /// preserved).
    pub fn reset_stats(&mut self) {
        for unit in self.units.values_mut() {
            unit.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::MatchPolicy;

    fn config() -> DeviceConfig {
        DeviceConfig::default()
    }

    #[test]
    fn units_materialize_lazily() {
        let mut sc = StreamCore::new();
        assert!(sc.unit(FpOp::Add).is_none());
        sc.unit_mut(FpOp::Add, &config());
        assert!(sc.unit(FpOp::Add).is_some());
        assert_eq!(sc.units().count(), 1);
    }

    #[test]
    fn issue_miss_then_hit() {
        let mut unit = LaneUnit::new(FpOp::Add, &config());
        let ops = Operands::binary(1.0, 2.0);
        let a = unit.issue(ops, false, 0);
        assert!(!a.hit);
        assert_eq!(a.result, 3.0);
        let b = unit.issue(ops, false, 1);
        assert!(b.hit);
        assert_eq!(unit.fpu().counters().squashed, 1);
        assert_eq!(unit.memo().stats().hits, 1);
    }

    #[test]
    fn baseline_arch_power_gates_the_module() {
        let cfg = config().rebuild().with_arch(ArchMode::Baseline).build().unwrap();
        let mut unit = LaneUnit::new(FpOp::Mul, &cfg);
        let ops = Operands::binary(2.0, 2.0);
        let a = unit.issue(ops, false, 0);
        let b = unit.issue(ops, false, 1);
        assert!(a.bypassed && b.bypassed && !b.hit);
        assert_eq!(unit.memo().stats().lookups, 0);
    }

    #[test]
    fn approximate_policy_flows_from_config() {
        let cfg = config()
            .rebuild()
            .with_policy(MatchPolicy::threshold(0.5))
            .build()
            .unwrap();
        let mut unit = LaneUnit::new(FpOp::Sqrt, &cfg);
        unit.issue(Operands::unary(4.0), false, 0);
        let out = unit.issue(Operands::unary(4.4), false, 1);
        assert!(out.hit);
        assert_eq!(out.result, 2.0);
    }

    #[test]
    fn adaptive_gate_trips_on_zero_locality_and_probes_back() {
        use tm_core::GatePolicy;
        let cfg = config()
            .rebuild()
            .with_adaptive_gate(GatePolicy {
                window: 4,
                min_hit_rate: 0.5,
                gate_period: 6,
                consecutive_windows: 1,
            })
            .build()
            .unwrap();
        let mut unit = LaneUnit::new(FpOp::Add, &cfg);
        // Distinct operands forever: every probe window re-trips the gate.
        // Cadence: 4 probing accesses, then 6 bypassed, repeating.
        let mut bypassed = 0;
        for i in 0..16 {
            let a = i as f32;
            let out = unit.issue(Operands::binary(a, 1.0), false, i);
            if out.bypassed {
                bypassed += 1;
            }
        }
        // i0–3 probe (trip #1), i4–9 gated, i10–13 probe (trip #2),
        // i14–15 gated.
        assert_eq!(unit.gate().unwrap().times_gated(), 2);
        assert_eq!(bypassed, 8);
        // Four more gated accesses exhaust the second period; the module
        // probes again after that.
        for i in 0..4 {
            let out = unit.issue(Operands::binary(100.0 + i as f32, 1.0), false, 100 + i);
            assert!(out.bypassed);
        }
        let out = unit.issue(Operands::binary(999.0, 1.0), false, 999);
        assert!(!out.bypassed);
    }

    #[test]
    fn adaptive_gate_stays_open_on_high_locality() {
        use tm_core::GatePolicy;
        let cfg = config()
            .rebuild()
            .with_adaptive_gate(GatePolicy {
                window: 4,
                min_hit_rate: 0.5,
                gate_period: 6,
                consecutive_windows: 1,
            })
            .build()
            .unwrap();
        let mut unit = LaneUnit::new(FpOp::Add, &cfg);
        let ops = Operands::binary(1.0, 2.0);
        for i in 0..64 {
            let out = unit.issue(ops, false, i);
            assert!(!out.bypassed);
        }
        assert_eq!(unit.gate().unwrap().times_gated(), 0);
        assert_eq!(unit.memo().stats().hits, 63);
    }

    #[test]
    fn error_on_miss_flushes_pipeline() {
        let mut unit = LaneUnit::new(FpOp::Add, &config());
        let out = unit.issue(Operands::binary(1.0, 1.0), true, 0);
        assert!(out.recovered);
        // The result is still the correct one (replay semantics).
        assert_eq!(out.result, 2.0);
    }
}
