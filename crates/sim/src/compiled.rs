//! Bytecode lowering and the lane-vectorized program VM.
//!
//! [`crate::program::VProgram`] is the canonical kernel form, but a
//! direct tree-walk over [`crate::program::VInst`] pays avoidable
//! per-instruction costs: immediates are re-splatted on every ALU step,
//! gather/scatter addressing re-reads and re-converts `f32` index
//! buffers lane by lane, and every instruction is a fresh dispatch.
//! Lowering into a flat [`CompiledProgram`] once per program removes all
//! of that from the interpreter's inner loop:
//!
//! - **Cursors** — ALU operand slots are precomputed into
//!   register/immediate-pool cursors; the immediate pool is deduplicated
//!   and splatted **once per launch** (`LaunchState`), not per step.
//! - **Index caches** — when no scatter targets an index buffer (the
//!   addressing is static, which validation of the packet stream checks
//!   once at build), every index buffer is converted to `usize` once per
//!   launch; the gather/scatter loops become straight lane-blocked
//!   walks over precomputed indices.
//! - **Packets** — runs of *free* (non-issuing) instructions — gathers,
//!   lane ids, lane shifts, mask pushes/pops — collapse into one `Free`
//!   packet; scatters of an ALU's destination fold into that ALU's
//!   packet as a "pipe" tail (gather→alu→scatter without re-dispatch);
//!   `MUL`-by-immediate + `EXP` pairs fuse into an exp-chain
//!   superinstruction.
//! - **Optional `MUL`+`ADD` → `MULADD` rewriting**
//!   ([`CompileOptions::fuse_muladd`]) — off by default because the
//!   hardware `MULADD` is a *fused* multiply-add: it changes both the
//!   FIFO-visible op stream and (by one rounding) the numerics, so it is
//!   a stream-altering optimization the bit-identity contract cannot
//!   include. Everything above is stream-preserving.
//!
//! # Interleaving invariants
//!
//! The packet is the unit of wavefront interleaving (`in_flight`).
//! Every packet either only *reads* buffers (a `Free` run) or only
//! *writes* them (an ALU body with its scatter tail, or a standalone
//! scatter run), so coarsening the interleave from instructions to
//! packets cannot change what any hazard-free or lane-private program
//! computes. And because non-ALU instructions issue nothing to the
//! FPUs, the per-CU sequence of `(wavefront, op, operands)` issues — the
//! stream temporal memoization lives on — is *identical* to the
//! instruction-granular walk at any `in_flight`, with one documented
//! exception: an exp-chain packet issues its two ops back to back, where
//! the instruction-granular walk could interleave another wavefront
//! between them when `in_flight > 1`. At `in_flight == 1` (the closure
//! oracle's semantics) every backend is bit-identical either way.
//!
//! Lane order is fixed: every loop here walks lanes `0..lanes` in
//! ascending order (the stream-core-major issue order lives inside
//! [`ComputeUnit`] and is shared with the closure path), so all three
//! backends produce byte-identical [`crate::DeviceReport`]s.

use crate::compute_unit::{ComputeUnit, ShardJournal};
use crate::program::{Bindings, BufferId, Src, VInst, VProgram, VReg8};
use std::collections::BTreeSet;
use std::ops::Range;
use tm_fpu::{FpOp, MAX_ARITY};

/// Lane-ops (`instructions × global_size`) below which the threaded
/// engines delegate a program launch to the sequential engine: for tiny
/// launches (a Haar level, an FWT stage) thread spawn plus journal merge
/// costs more than the work itself — the fwt-ir "parallel cliff".
pub const SMALL_KERNEL_LANE_OPS: usize = 1 << 18;

/// Knobs for [`CompiledProgram::compile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileOptions {
    /// Rewrite `MUL t, a, b; ADD d, t, c` into `MULADD d, a, b, c` when
    /// `t` is dead afterwards. **Stream-altering**: the fused op changes
    /// the per-FPU operand streams and (by one rounding step) the
    /// numerics, so reports are no longer comparable to the unfused
    /// form. Defaults to `false`.
    pub fuse_muladd: bool,
}

/// An ALU operand slot, resolved at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cursor {
    /// A vector register.
    Reg(VReg8),
    /// An index into the deduplicated immediate pool.
    Imm(u16),
}

/// One lowered ALU instruction plus its folded scatter tail.
#[derive(Debug, Clone, Copy)]
struct AluStep {
    op: FpOp,
    dst: VReg8,
    arity: u8,
    srcs: [Cursor; MAX_ARITY],
    scatter_first: u32,
    scatter_len: u32,
}

/// One lowered free (non-issuing) instruction.
#[derive(Debug, Clone, Copy)]
enum FreeStep {
    LaneId { dst: VReg8 },
    Gather { dst: VReg8, data: BufferId, indices: BufferId },
    LaneShift { dst: VReg8, src: VReg8, offset: i32 },
    PushMask { mask: VReg8 },
    PopMask,
}

/// One lowered scatter.
#[derive(Debug, Clone, Copy)]
struct ScatterStep {
    src: VReg8,
    data: BufferId,
    indices: BufferId,
}

/// One interpreter dispatch: the unit of wavefront interleaving.
#[derive(Debug, Clone, Copy)]
enum Packet {
    /// `frees[first..first+len]` — buffer reads and register moves only.
    Free { first: u32, len: u32 },
    /// `alus[idx]` with its scatter tail — one FPU issue, then writes.
    Alu { idx: u32 },
    /// `alus[idx]` (a `MUL` by an immediate) immediately followed by
    /// `alus[idx + 1]` (the `EXP` of its result) — two FPU issues.
    ExpChain { idx: u32 },
    /// `scatters[first..first+len]` — buffer writes only.
    Scatters { first: u32, len: u32 },
}

/// A [`VProgram`] lowered into flat bytecode. Built once per program
/// (validation included), executed by every backend.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    source: VProgram,
    packets: Vec<Packet>,
    alus: Vec<AluStep>,
    frees: Vec<FreeStep>,
    scatters: Vec<ScatterStep>,
    imms: Vec<f32>,
    registers: usize,
    /// Registers read (or masked-written) before their first full
    /// write — the only ones a fresh wavefront must zero-initialize.
    zero_regs: Vec<VReg8>,
    /// No scatter targets an index buffer, so per-launch index caches
    /// are sound.
    static_indices: bool,
    exp_chains: usize,
    fused_muladds: usize,
}

impl CompiledProgram {
    /// Lowers a validated program into bytecode.
    ///
    /// # Panics
    ///
    /// Panics if the program needs more than `u16::MAX` distinct
    /// immediates (no real kernel comes close).
    #[must_use]
    pub fn compile(program: &VProgram, options: &CompileOptions) -> Self {
        let source = program.clone();
        let (insts, fused_muladds) = if options.fuse_muladd {
            rewrite_muladd(program.instructions())
        } else {
            (program.instructions().to_vec(), 0)
        };

        let mut packets: Vec<Packet> = Vec::new();
        let mut alus: Vec<AluStep> = Vec::new();
        let mut frees: Vec<FreeStep> = Vec::new();
        let mut scatters: Vec<ScatterStep> = Vec::new();
        let mut imms: Vec<f32> = Vec::new();

        fn push_free(packets: &mut Vec<Packet>, frees: &mut Vec<FreeStep>, step: FreeStep) {
            let pos = frees.len() as u32;
            frees.push(step);
            match packets.last_mut() {
                Some(Packet::Free { first, len }) if *first + *len == pos => *len += 1,
                _ => packets.push(Packet::Free { first: pos, len: 1 }),
            }
        }

        for inst in &insts {
            match inst {
                VInst::LaneId { dst } => {
                    push_free(&mut packets, &mut frees, FreeStep::LaneId { dst: *dst });
                }
                VInst::Gather { dst, data, indices } => push_free(
                    &mut packets,
                    &mut frees,
                    FreeStep::Gather { dst: *dst, data: *data, indices: *indices },
                ),
                VInst::LaneShift { dst, src, offset } => push_free(
                    &mut packets,
                    &mut frees,
                    FreeStep::LaneShift { dst: *dst, src: *src, offset: *offset },
                ),
                VInst::PushMask { mask } => {
                    push_free(&mut packets, &mut frees, FreeStep::PushMask { mask: *mask });
                }
                VInst::PopMask => push_free(&mut packets, &mut frees, FreeStep::PopMask),
                VInst::Alu { op, dst, srcs } => {
                    let mut cursors = [Cursor::Reg(0); MAX_ARITY];
                    for (k, s) in srcs.iter().enumerate() {
                        cursors[k] = match s {
                            Src::Reg(r) => Cursor::Reg(*r),
                            Src::Imm(v) => Cursor::Imm(intern_imm(&mut imms, *v)),
                        };
                    }
                    alus.push(AluStep {
                        op: *op,
                        dst: *dst,
                        arity: srcs.len() as u8,
                        srcs: cursors,
                        scatter_first: 0,
                        scatter_len: 0,
                    });
                    packets.push(Packet::Alu { idx: (alus.len() - 1) as u32 });
                }
                VInst::Scatter { src, data, indices } => {
                    let step = ScatterStep { src: *src, data: *data, indices: *indices };
                    // Fold into the producing ALU's tail: the packet
                    // stays write-only (the ALU reads registers, not
                    // buffers) and the fold is contiguous by
                    // construction (the ALU is still the last packet).
                    if let Some(Packet::Alu { idx }) = packets.last().copied() {
                        let a = &mut alus[idx as usize];
                        if a.dst == *src {
                            if a.scatter_len == 0 {
                                a.scatter_first = scatters.len() as u32;
                            }
                            scatters.push(step);
                            a.scatter_len += 1;
                            continue;
                        }
                    }
                    let pos = scatters.len() as u32;
                    scatters.push(step);
                    match packets.last_mut() {
                        Some(Packet::Scatters { first, len }) if *first + *len == pos => *len += 1,
                        _ => packets.push(Packet::Scatters { first: pos, len: 1 }),
                    }
                }
            }
        }

        // Exp-chain fusion: MUL-by-immediate feeding an EXP of its
        // result (the `exp(x) = exp2(x·log2 e)` shape every
        // transcendental lowering emits). Purely structural — both ops
        // still issue, in order, with unchanged operands.
        let mut fused = Vec::with_capacity(packets.len());
        let mut exp_chains = 0usize;
        let mut p = 0;
        while p < packets.len() {
            if p + 1 < packets.len() {
                if let (Packet::Alu { idx: i }, Packet::Alu { idx: j }) =
                    (packets[p], packets[p + 1])
                {
                    let (a, b) = (&alus[i as usize], &alus[j as usize]);
                    if j == i + 1
                        && a.op == FpOp::Mul
                        && a.scatter_len == 0
                        && a.srcs[..2].iter().any(|c| matches!(c, Cursor::Imm(_)))
                        && b.op == FpOp::Exp2
                        && b.srcs[0] == Cursor::Reg(a.dst)
                    {
                        fused.push(Packet::ExpChain { idx: i });
                        exp_chains += 1;
                        p += 2;
                        continue;
                    }
                }
            }
            fused.push(packets[p]);
            p += 1;
        }

        let scattered: BTreeSet<BufferId> = source
            .instructions()
            .iter()
            .filter_map(|i| match i {
                VInst::Scatter { data, .. } => Some(*data),
                _ => None,
            })
            .collect();
        let index_bufs: BTreeSet<BufferId> = source
            .instructions()
            .iter()
            .filter_map(|i| match i {
                VInst::Gather { indices, .. } | VInst::Scatter { indices, .. } => Some(*indices),
                _ => None,
            })
            .collect();
        let static_indices = scattered.intersection(&index_bufs).next().is_none();

        Self {
            registers: source.registers(),
            zero_regs: regs_needing_zero(&insts, source.registers()),
            source,
            packets: fused,
            alus,
            frees,
            scatters,
            imms,
            static_indices,
            exp_chains,
            fused_muladds,
        }
    }

    /// The program this bytecode was lowered from (the canonical form —
    /// hazard analysis and disassembly run against it).
    #[must_use]
    pub fn source(&self) -> &VProgram {
        &self.source
    }

    /// Number of interpreter packets (dispatches per wavefront pass).
    #[must_use]
    pub fn packet_count(&self) -> usize {
        self.packets.len()
    }

    /// Number of fused exp-chain superinstructions.
    #[must_use]
    pub fn exp_chains(&self) -> usize {
        self.exp_chains
    }

    /// Number of `MUL`+`ADD` pairs rewritten to `MULADD`
    /// (always 0 unless [`CompileOptions::fuse_muladd`] was set).
    #[must_use]
    pub fn fused_muladds(&self) -> usize {
        self.fused_muladds
    }

    /// Whether a threaded engine should delegate this launch to the
    /// sequential engine (see [`SMALL_KERNEL_LANE_OPS`]).
    #[must_use]
    pub fn prefers_sequential(&self, global_size: usize) -> bool {
        self.source.len().saturating_mul(global_size) < SMALL_KERNEL_LANE_OPS
    }
}

/// Registers whose initial 0.0 contents are observable: read (as an ALU
/// source, mask, lane-shift input or scatter payload) — or written under
/// a mask, which preserves inactive lanes — before their first full
/// unconditional write. Everything else is overwritten before any read,
/// so a fresh wavefront can skip zeroing it.
fn regs_needing_zero(insts: &[VInst], registers: usize) -> Vec<VReg8> {
    let mut written = vec![false; registers];
    let mut needs = vec![false; registers];
    let mut depth = 0usize;
    for inst in insts {
        let read = |r: VReg8, written: &[bool], needs: &mut [bool]| {
            if !written[r as usize] {
                needs[r as usize] = true;
            }
        };
        match inst {
            VInst::Alu { dst, srcs, .. } => {
                for s in srcs {
                    if let Src::Reg(r) = s {
                        read(*r, &written, &mut needs);
                    }
                }
                if depth > 0 {
                    // Masked write-back keeps the old value in inactive
                    // lanes — that is a read of the destination.
                    read(*dst, &written, &mut needs);
                }
                written[*dst as usize] = true;
            }
            VInst::Gather { dst, .. } | VInst::LaneId { dst } => written[*dst as usize] = true,
            VInst::LaneShift { dst, src, .. } => {
                read(*src, &written, &mut needs);
                written[*dst as usize] = true;
            }
            VInst::PushMask { mask } => {
                read(*mask, &written, &mut needs);
                depth += 1;
            }
            VInst::PopMask => depth = depth.saturating_sub(1),
            VInst::Scatter { src, .. } => read(*src, &written, &mut needs),
        }
    }
    (0..registers)
        .filter(|&r| needs[r])
        .map(|r| r as VReg8)
        .collect()
}

/// Deduplicates an immediate into the pool (bitwise, so `-0.0` and
/// `NaN` payloads stay distinct where they were distinct).
fn intern_imm(imms: &mut Vec<f32>, v: f32) -> u16 {
    let at = imms
        .iter()
        .position(|x| x.to_bits() == v.to_bits())
        .unwrap_or_else(|| {
            imms.push(v);
            imms.len() - 1
        });
    u16::try_from(at).expect("immediate pool exceeds u16 indices")
}

/// `MUL t, a, b; ADD d, t, c → MULADD d, a, b, c` where `t` is dead
/// after the pair. Returns the rewritten list and the rewrite count.
fn rewrite_muladd(insts: &[VInst]) -> (Vec<VInst>, usize) {
    let reg_read_later = |from: usize, reg: VReg8| {
        insts[from..].iter().any(|inst| match inst {
            VInst::Alu { srcs, .. } => {
                srcs.iter().any(|s| matches!(s, Src::Reg(r) if *r == reg))
            }
            VInst::Scatter { src, .. } => *src == reg,
            VInst::PushMask { mask } => *mask == reg,
            VInst::LaneShift { src, .. } => *src == reg,
            VInst::Gather { .. } | VInst::LaneId { .. } | VInst::PopMask => false,
        })
    };
    let mut out = Vec::with_capacity(insts.len());
    let mut fused = 0usize;
    let mut i = 0;
    while i < insts.len() {
        if i + 1 < insts.len() {
            if let (
                VInst::Alu { op: FpOp::Mul, dst: t, srcs: mul_srcs },
                VInst::Alu { op: FpOp::Add, dst: d, srcs: add_srcs },
            ) = (&insts[i], &insts[i + 1])
            {
                let uses_t: Vec<bool> = add_srcs
                    .iter()
                    .map(|s| matches!(s, Src::Reg(r) if r == t))
                    .collect();
                let t_dead = *d == *t || !reg_read_later(i + 2, *t);
                if uses_t.iter().filter(|u| **u).count() == 1 && t_dead {
                    let c = if uses_t[0] { add_srcs[1] } else { add_srcs[0] };
                    out.push(VInst::Alu {
                        op: FpOp::MulAdd,
                        dst: *d,
                        srcs: vec![mul_srcs[0], mul_srcs[1], c],
                    });
                    fused += 1;
                    i += 2;
                    continue;
                }
            }
        }
        out.push(insts[i].clone());
        i += 1;
    }
    (out, fused)
}

/// One journaled scatter write (`bindings[data][index] = value`) for the
/// parallel engine's CU-order replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ScatterWrite {
    pub data: BufferId,
    pub index: usize,
    pub value: f32,
}

/// One journaled scatter write with its intra-CU merge key: the scatter
/// step's ordinal in the CU queue's deterministic interleaving
/// (identical across shards) and the lane position within the wavefront.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScatterRec {
    pub ordinal: u32,
    pub lane: u32,
    pub data: BufferId,
    pub index: usize,
    pub value: f32,
}

/// Per-launch derived state, shared read-only by every CU/worker: the
/// immediate pool splatted to wavefront width, and (when addressing is
/// static) every index buffer pre-converted to `usize`.
#[derive(Debug)]
pub(crate) struct LaunchState {
    imm_lanes: Vec<Vec<f32>>,
    index_cache: Vec<Option<Vec<usize>>>,
}

impl LaunchState {
    pub fn new(
        compiled: &CompiledProgram,
        bindings: &Bindings,
        max_lanes: usize,
        global_size: usize,
    ) -> Self {
        let imm_lanes = compiled.imms.iter().map(|&v| vec![v; max_lanes]).collect();
        let mut index_cache: Vec<Option<Vec<usize>>> = vec![None; bindings.len()];
        if compiled.static_indices {
            let used: BTreeSet<BufferId> = compiled
                .frees
                .iter()
                .filter_map(|f| match f {
                    FreeStep::Gather { indices, .. } => Some(*indices),
                    _ => None,
                })
                .chain(compiled.scatters.iter().map(|s| s.indices))
                .collect();
            for id in used {
                // Out-of-range or short buffers fall back to live reads,
                // preserving the uncached panic-on-use semantics (a
                // fully masked scatter must not panic eagerly).
                if id < bindings.len() && bindings.buffer(id).len() >= global_size {
                    index_cache[id] = Some(
                        bindings.buffer(id)[..global_size]
                            .iter()
                            .map(|&x| x as usize)
                            .collect(),
                    );
                }
            }
        }
        Self { imm_lanes, index_cache }
    }
}

/// One in-flight wavefront: program counter over packets, register
/// file, and the mask stack (each entry already intersected with its
/// predecessors, so the top *is* the active mask).
#[derive(Debug, Default)]
struct WaveState {
    start: usize,
    lanes: usize,
    pc: usize,
    regs: Vec<Vec<f32>>,
    masks: Vec<Vec<bool>>,
    mask_pool: Vec<Vec<bool>>,
}

impl WaveState {
    fn new(range: Range<usize>, compiled: &CompiledProgram) -> Self {
        let mut s = Self::default();
        s.reset(range, compiled);
        s
    }

    /// Re-targets this state at a fresh wavefront, reusing every
    /// allocation. Only registers whose initial value is observable
    /// ([`CompiledProgram::zero_regs`]) are zeroed — the rest are fully
    /// overwritten before any read, so their stale lanes never escape.
    fn reset(&mut self, range: Range<usize>, compiled: &CompiledProgram) {
        self.start = range.start;
        self.lanes = range.len();
        self.pc = 0;
        self.regs.resize_with(compiled.registers, Vec::new);
        for r in &mut self.regs {
            r.resize(self.lanes, 0.0);
        }
        for &r in &compiled.zero_regs {
            self.regs[r as usize].fill(0.0);
        }
        self.mask_pool.append(&mut self.masks);
    }
}

/// Reusable buffers for one CU queue drain: the all-active mask and the
/// ALU result/lane-shift temporary. Steady state allocates nothing.
#[derive(Debug, Default)]
struct ExecScratch {
    active: Vec<bool>,
    result: Vec<f32>,
}

/// Drains one CU's wavefront queue with `in_flight`-way packet
/// interleaving. With a journal, scatters are applied to the (local)
/// bindings *and* recorded for later replay onto the shared bindings.
pub(crate) fn run_cu_compiled_queue(
    cu: &mut ComputeUnit,
    compiled: &CompiledProgram,
    launch: &LaunchState,
    queue: Vec<Range<usize>>,
    bindings: &mut Bindings,
    in_flight: usize,
    mut journal: Option<&mut Vec<ScatterWrite>>,
) {
    let mut scratch = ExecScratch::default();
    let mut pending = queue.into_iter();
    let mut active: Vec<WaveState> = pending
        .by_ref()
        .take(in_flight)
        .map(|r| WaveState::new(r, compiled))
        .collect();
    while !active.is_empty() {
        let mut i = 0;
        while i < active.len() {
            step_packet(
                cu,
                compiled,
                launch,
                &mut active[i],
                bindings,
                journal.as_deref_mut(),
                &mut scratch,
            );
            if active[i].pc >= compiled.packets.len() {
                match pending.next() {
                    Some(fresh) => active[i].reset(fresh, compiled),
                    None => {
                        active.remove(i);
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
}

/// Executes one packet of one wavefront.
fn step_packet(
    cu: &mut ComputeUnit,
    compiled: &CompiledProgram,
    launch: &LaunchState,
    ws: &mut WaveState,
    bindings: &mut Bindings,
    mut journal: Option<&mut Vec<ScatterWrite>>,
    scratch: &mut ExecScratch,
) {
    match compiled.packets[ws.pc] {
        Packet::Free { first, len } => {
            for k in first..first + len {
                exec_free(compiled.frees[k as usize], launch, ws, bindings, scratch);
            }
        }
        Packet::Alu { idx } => {
            exec_alu(cu, compiled, launch, ws, bindings, journal, scratch, idx as usize);
        }
        Packet::ExpChain { idx } => {
            exec_alu(
                cu,
                compiled,
                launch,
                ws,
                bindings,
                journal.as_deref_mut(),
                scratch,
                idx as usize,
            );
            exec_alu(cu, compiled, launch, ws, bindings, journal, scratch, idx as usize + 1);
        }
        Packet::Scatters { first, len } => {
            for k in first..first + len {
                exec_scatter(
                    compiled.scatters[k as usize],
                    launch,
                    ws,
                    bindings,
                    journal.as_deref_mut(),
                );
            }
        }
    }
    ws.pc += 1;
}

/// Executes one free (non-issuing) step.
fn exec_free(
    step: FreeStep,
    launch: &LaunchState,
    ws: &mut WaveState,
    bindings: &Bindings,
    scratch: &mut ExecScratch,
) {
    match step {
        FreeStep::LaneId { dst } => {
            let start = ws.start;
            for (l, r) in ws.regs[dst as usize].iter_mut().enumerate() {
                *r = (start + l) as f32;
            }
        }
        FreeStep::Gather { dst, data, indices } => {
            let reg = &mut ws.regs[dst as usize];
            if let Some(cache) = launch.index_cache.get(indices).and_then(Option::as_ref) {
                let data = bindings.buffer(data);
                for (r, &idx) in reg.iter_mut().zip(&cache[ws.start..ws.start + ws.lanes]) {
                    *r = data[idx];
                }
            } else {
                let start = ws.start;
                for (l, r) in reg.iter_mut().enumerate() {
                    *r = bindings.gather(data, indices, start + l);
                }
            }
        }
        FreeStep::LaneShift { dst, src, offset } => {
            let lanes = ws.lanes;
            let mut tmp = std::mem::take(&mut scratch.result);
            tmp.clear();
            tmp.resize(lanes, 0.0);
            let srcv = &ws.regs[src as usize];
            for (l, t) in tmp.iter_mut().enumerate() {
                let from = l as i64 + i64::from(offset);
                if (0..lanes as i64).contains(&from) {
                    *t = srcv[from as usize];
                }
            }
            std::mem::swap(&mut ws.regs[dst as usize], &mut tmp);
            scratch.result = tmp;
        }
        FreeStep::PushMask { mask } => {
            let mut m = ws.mask_pool.pop().unwrap_or_default();
            m.clear();
            let reg = &ws.regs[mask as usize];
            match ws.masks.last() {
                Some(top) => m.extend(reg.iter().zip(top).map(|(&v, &a)| a && v != 0.0)),
                None => m.extend(reg.iter().map(|&v| v != 0.0)),
            }
            ws.masks.push(m);
        }
        FreeStep::PopMask => {
            if let Some(m) = ws.masks.pop() {
                ws.mask_pool.push(m);
            }
        }
    }
}

/// Executes one ALU step (issue + masked write-back + scatter tail).
#[allow(clippy::too_many_arguments)]
fn exec_alu(
    cu: &mut ComputeUnit,
    compiled: &CompiledProgram,
    launch: &LaunchState,
    ws: &mut WaveState,
    bindings: &mut Bindings,
    mut journal: Option<&mut Vec<ScatterWrite>>,
    scratch: &mut ExecScratch,
    idx: usize,
) {
    let step = compiled.alus[idx];
    let lanes = ws.lanes;
    let mut result = std::mem::take(&mut scratch.result);
    {
        let mut slices = [[].as_slice(); MAX_ARITY];
        for (k, cursor) in step.srcs[..step.arity as usize].iter().enumerate() {
            slices[k] = match cursor {
                Cursor::Reg(r) => &ws.regs[*r as usize],
                Cursor::Imm(i) => &launch.imm_lanes[*i as usize][..lanes],
            };
        }
        let active: &[bool] = match ws.masks.last() {
            Some(m) => m,
            None => {
                // `scratch.active` only ever holds `true`, so a matching
                // length means it is already the all-lanes mask.
                if scratch.active.len() != lanes {
                    scratch.active.clear();
                    scratch.active.resize(lanes, true);
                }
                &scratch.active
            }
        };
        cu.issue_vector_into(step.op, &slices[..step.arity as usize], active, &mut result);
        // Masked write-back preserves the destination in inactive lanes
        // (Evergreen predication), subsuming the closure kernels'
        // host-side `v = live ? v_new : v` merges for free.
        if let Some(m) = ws.masks.last() {
            let old = &ws.regs[step.dst as usize];
            for (l, r) in result.iter_mut().enumerate() {
                if !m[l] {
                    *r = old[l];
                }
            }
        }
    }
    std::mem::swap(&mut ws.regs[step.dst as usize], &mut result);
    scratch.result = result;
    for k in step.scatter_first..step.scatter_first + step.scatter_len {
        exec_scatter(
            compiled.scatters[k as usize],
            launch,
            ws,
            bindings,
            journal.as_deref_mut(),
        );
    }
}

/// Executes one scatter step. Respects the mask: only active lanes
/// store (matching the closure kernels' host-side conditional writes).
fn exec_scatter(
    step: ScatterStep,
    launch: &LaunchState,
    ws: &WaveState,
    bindings: &mut Bindings,
    mut journal: Option<&mut Vec<ScatterWrite>>,
) {
    let mask = ws.masks.last();
    let reg = &ws.regs[step.src as usize];
    let cache = launch.index_cache.get(step.indices).and_then(Option::as_ref);
    for l in 0..ws.lanes {
        if mask.is_some_and(|m| !m[l]) {
            continue;
        }
        let gid = ws.start + l;
        let index = match cache {
            Some(c) => c[gid],
            None => bindings.scatter_index(step.indices, gid),
        };
        bindings.apply_write(step.data, index, reg[l]);
        if let Some(j) = journal.as_deref_mut() {
            j.push(ScatterWrite { data: step.data, index, value: reg[l] });
        }
    }
}

/// The shard-restricted twin of [`run_cu_compiled_queue`]: identical
/// packet interleaving (so scatter ordinals align across shards), but
/// each step touches only the shard's owned lanes, journaling issued
/// events and scatters for the deterministic merge.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_cu_compiled_queue_sharded(
    cu: &mut ComputeUnit,
    compiled: &CompiledProgram,
    launch: &LaunchState,
    queue: &[Range<usize>],
    bindings: &mut Bindings,
    in_flight: usize,
    sc_range: &Range<usize>,
    num_scs: usize,
    journal: &mut ShardJournal,
    scatters: &mut Vec<ScatterRec>,
) {
    debug_assert!(
        !compiled.source.has_cross_lane_ops(),
        "cross-lane programs cannot be lane-sharded"
    );
    let mut scratch = ExecScratch::default();
    let mut ordinal: u32 = 0;
    let mut pending = queue.iter().cloned();
    let mut active: Vec<WaveState> = pending
        .by_ref()
        .take(in_flight)
        .map(|r| WaveState::new(r, compiled))
        .collect();
    while !active.is_empty() {
        let mut i = 0;
        while i < active.len() {
            step_packet_sharded(
                cu,
                compiled,
                launch,
                &mut active[i],
                bindings,
                sc_range,
                num_scs,
                journal,
                scatters,
                &mut ordinal,
                &mut scratch,
            );
            if active[i].pc >= compiled.packets.len() {
                match pending.next() {
                    Some(fresh) => active[i].reset(fresh, compiled),
                    None => {
                        active.remove(i);
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
}

/// Executes one packet for the shard's owned lanes only.
#[allow(clippy::too_many_arguments)]
fn step_packet_sharded(
    cu: &mut ComputeUnit,
    compiled: &CompiledProgram,
    launch: &LaunchState,
    ws: &mut WaveState,
    bindings: &mut Bindings,
    sc_range: &Range<usize>,
    num_scs: usize,
    journal: &mut ShardJournal,
    scatters: &mut Vec<ScatterRec>,
    ordinal: &mut u32,
    scratch: &mut ExecScratch,
) {
    match compiled.packets[ws.pc] {
        Packet::Free { first, len } => {
            for k in first..first + len {
                exec_free_sharded(
                    compiled.frees[k as usize],
                    launch,
                    ws,
                    bindings,
                    sc_range,
                    num_scs,
                    scratch,
                );
            }
        }
        Packet::Alu { idx } => exec_alu_sharded(
            cu, compiled, launch, ws, bindings, sc_range, num_scs, journal, scatters, ordinal,
            scratch, idx as usize,
        ),
        Packet::ExpChain { idx } => {
            exec_alu_sharded(
                cu, compiled, launch, ws, bindings, sc_range, num_scs, journal, scatters, ordinal,
                scratch, idx as usize,
            );
            exec_alu_sharded(
                cu,
                compiled,
                launch,
                ws,
                bindings,
                sc_range,
                num_scs,
                journal,
                scatters,
                ordinal,
                scratch,
                idx as usize + 1,
            );
        }
        Packet::Scatters { first, len } => {
            for k in first..first + len {
                exec_scatter_sharded(
                    compiled.scatters[k as usize],
                    launch,
                    ws,
                    bindings,
                    sc_range,
                    num_scs,
                    scatters,
                    ordinal,
                );
            }
        }
    }
    ws.pc += 1;
}

/// Executes one free step for a shard. Lane ids and masks fill every
/// lane (they are pure functions of shard-visible state); gathers fill
/// owned lanes only — non-owned registers stay 0.0 and feed nothing the
/// shard executes.
fn exec_free_sharded(
    step: FreeStep,
    launch: &LaunchState,
    ws: &mut WaveState,
    bindings: &Bindings,
    sc_range: &Range<usize>,
    num_scs: usize,
    scratch: &mut ExecScratch,
) {
    match step {
        FreeStep::Gather { dst, data, indices } => {
            let start = ws.start;
            let reg = &mut ws.regs[dst as usize];
            if let Some(cache) = launch.index_cache.get(indices).and_then(Option::as_ref) {
                let data = bindings.buffer(data);
                for (l, r) in reg.iter_mut().enumerate() {
                    if sc_range.contains(&(l % num_scs)) {
                        *r = data[cache[start + l]];
                    }
                }
            } else {
                for (l, r) in reg.iter_mut().enumerate() {
                    if sc_range.contains(&(l % num_scs)) {
                        *r = bindings.gather(data, indices, start + l);
                    }
                }
            }
        }
        FreeStep::LaneShift { .. } => {
            unreachable!("cross-lane programs fall back before sharded execution")
        }
        other => exec_free(other, launch, ws, bindings, scratch),
    }
}

/// Executes one ALU step for a shard: owned lanes issue through the
/// shard's stream cores into the journal.
#[allow(clippy::too_many_arguments)]
fn exec_alu_sharded(
    cu: &mut ComputeUnit,
    compiled: &CompiledProgram,
    launch: &LaunchState,
    ws: &mut WaveState,
    bindings: &mut Bindings,
    sc_range: &Range<usize>,
    num_scs: usize,
    journal: &mut ShardJournal,
    scatters: &mut Vec<ScatterRec>,
    ordinal: &mut u32,
    scratch: &mut ExecScratch,
    idx: usize,
) {
    let step = compiled.alus[idx];
    let lanes = ws.lanes;
    let mut result = std::mem::take(&mut scratch.result);
    {
        let mut slices = [[].as_slice(); MAX_ARITY];
        for (k, cursor) in step.srcs[..step.arity as usize].iter().enumerate() {
            slices[k] = match cursor {
                Cursor::Reg(r) => &ws.regs[*r as usize],
                Cursor::Imm(i) => &launch.imm_lanes[*i as usize][..lanes],
            };
        }
        let active: &[bool] = match ws.masks.last() {
            Some(m) => m,
            None => {
                // Same length-guarded refill as the unsharded path above.
                if scratch.active.len() != lanes {
                    scratch.active.clear();
                    scratch.active.resize(lanes, true);
                }
                &scratch.active
            }
        };
        cu.issue_vector_sharded(
            step.op,
            &slices[..step.arity as usize],
            active,
            sc_range.clone(),
            false,
            &mut result,
            journal,
        );
        if let Some(m) = ws.masks.last() {
            let old = &ws.regs[step.dst as usize];
            for (l, r) in result.iter_mut().enumerate() {
                if !m[l] {
                    *r = old[l];
                }
            }
        }
    }
    std::mem::swap(&mut ws.regs[step.dst as usize], &mut result);
    scratch.result = result;
    for k in step.scatter_first..step.scatter_first + step.scatter_len {
        exec_scatter_sharded(
            compiled.scatters[k as usize],
            launch,
            ws,
            bindings,
            sc_range,
            num_scs,
            scatters,
            ordinal,
        );
    }
}

/// Executes one scatter step for a shard's owned (and active) lanes.
/// Every shard executes every scatter step, so the ordinal counter
/// stays aligned across shards even when a shard owns no active lane.
#[allow(clippy::too_many_arguments)]
fn exec_scatter_sharded(
    step: ScatterStep,
    launch: &LaunchState,
    ws: &WaveState,
    bindings: &mut Bindings,
    sc_range: &Range<usize>,
    num_scs: usize,
    scatters: &mut Vec<ScatterRec>,
    ordinal: &mut u32,
) {
    let mask = ws.masks.last();
    let reg = &ws.regs[step.src as usize];
    let cache = launch.index_cache.get(step.indices).and_then(Option::as_ref);
    for l in 0..ws.lanes {
        if !sc_range.contains(&(l % num_scs)) || mask.is_some_and(|m| !m[l]) {
            continue;
        }
        let gid = ws.start + l;
        let index = match cache {
            Some(c) => c[gid],
            None => bindings.scatter_index(step.indices, gid),
        };
        bindings.apply_write(step.data, index, reg[l]);
        scatters.push(ScatterRec {
            ordinal: *ordinal,
            lane: l as u32,
            data: step.data,
            index,
            value: reg[l],
        });
    }
    *ordinal += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::engine::{ExecEngine, ParallelEngine, Schedule, SequentialEngine};
    use crate::intra_cu::IntraCuEngine;
    use crate::program::{Src, VInst};

    fn cus(config: &DeviceConfig, n: usize) -> Vec<ComputeUnit> {
        (0..n).map(|i| ComputeUnit::new(config, i)).collect()
    }

    /// `out[i] = sqrt(in[i]) * 2 + in[i]` with identity indices — one
    /// free run, three ALU packets (last with a folded scatter tail).
    fn simple_program() -> VProgram {
        VProgram::new(
            3,
            vec![
                VInst::Gather { dst: 0, data: 0, indices: 1 },
                VInst::Alu { op: FpOp::Sqrt, dst: 1, srcs: vec![Src::Reg(0)] },
                VInst::Alu {
                    op: FpOp::Mul,
                    dst: 1,
                    srcs: vec![Src::Reg(1), Src::Imm(2.0)],
                },
                VInst::Alu {
                    op: FpOp::Add,
                    dst: 2,
                    srcs: vec![Src::Reg(1), Src::Reg(0)],
                },
                VInst::Scatter { src: 2, data: 2, indices: 1 },
            ],
        )
        .unwrap()
    }

    #[test]
    fn lowering_folds_frees_and_scatter_tails() {
        let cp = CompiledProgram::compile(&simple_program(), &CompileOptions::default());
        // Free{gather}, Alu{sqrt}, Alu{mul}, Alu{add + scatter tail}.
        assert_eq!(cp.packet_count(), 4);
        assert_eq!(cp.alus[2].scatter_len, 1);
        assert_eq!(cp.exp_chains(), 0);
        assert_eq!(cp.fused_muladds(), 0);
        assert!(cp.static_indices);
    }

    #[test]
    fn immediates_are_deduplicated() {
        let p = VProgram::new(
            1,
            vec![
                VInst::LaneId { dst: 0 },
                VInst::Alu { op: FpOp::Add, dst: 0, srcs: vec![Src::Reg(0), Src::Imm(3.0)] },
                VInst::Alu { op: FpOp::Mul, dst: 0, srcs: vec![Src::Reg(0), Src::Imm(3.0)] },
                VInst::Alu { op: FpOp::Max, dst: 0, srcs: vec![Src::Reg(0), Src::Imm(-3.0)] },
            ],
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p, &CompileOptions::default());
        assert_eq!(cp.imms, vec![3.0, -3.0]);
    }

    #[test]
    fn exp_chain_detected_and_numerically_exact() {
        // exp(x) = exp2(x * log2 e): the canonical chain.
        let p = VProgram::new(
            2,
            vec![
                VInst::LaneId { dst: 0 },
                VInst::Alu {
                    op: FpOp::Mul,
                    dst: 1,
                    srcs: vec![Src::Reg(0), Src::Imm(std::f32::consts::LOG2_E)],
                },
                VInst::Alu { op: FpOp::Exp2, dst: 1, srcs: vec![Src::Reg(1)] },
                VInst::Scatter { src: 1, data: 0, indices: 1 },
            ],
        )
        .unwrap();
        let cp = CompiledProgram::compile(&p, &CompileOptions::default());
        assert_eq!(cp.exp_chains(), 1);
        // LaneId, ExpChain (two issues, with the exp's scatter tail).
        assert_eq!(cp.packet_count(), 2);

        let n = 64;
        let config = DeviceConfig::default();
        let mut b = Bindings::new(vec![vec![0.0; n], (0..n).map(|i| i as f32).collect()]);
        let schedule = Schedule::new(n, config.wavefront_size, 1);
        SequentialEngine::new().run_compiled(&mut cus(&config, 1), &cp, &mut b, &schedule, 1);
        for (i, &v) in b.buffer(0).iter().enumerate() {
            let expect = (i as f32 * std::f32::consts::LOG2_E).exp2();
            assert_eq!(v, expect, "lane {i}");
        }
    }

    #[test]
    fn muladd_rewrite_is_opt_in_and_counts() {
        // t = a*b; d = t + c with t dead → one MULADD under the option.
        let p = VProgram::new(
            4,
            vec![
                VInst::LaneId { dst: 0 },
                VInst::Alu { op: FpOp::Mul, dst: 1, srcs: vec![Src::Reg(0), Src::Imm(0.5)] },
                VInst::Alu { op: FpOp::Add, dst: 2, srcs: vec![Src::Reg(1), Src::Imm(1.0)] },
                VInst::Scatter { src: 2, data: 0, indices: 1 },
            ],
        )
        .unwrap();
        let plain = CompiledProgram::compile(&p, &CompileOptions::default());
        assert_eq!(plain.fused_muladds(), 0);
        let fused = CompiledProgram::compile(&p, &CompileOptions { fuse_muladd: true });
        assert_eq!(fused.fused_muladds(), 1);

        let n = 128;
        let config = DeviceConfig::default();
        let schedule = Schedule::new(n, config.wavefront_size, 1);
        let mk = || Bindings::new(vec![vec![0.0; n], (0..n).map(|i| i as f32).collect()]);
        let mut b_plain = mk();
        let mut plain_cus = cus(&config, 1);
        SequentialEngine::new().run_compiled(&mut plain_cus, &plain, &mut b_plain, &schedule, 1);
        let mut b_fused = mk();
        let mut fused_cus = cus(&config, 1);
        SequentialEngine::new().run_compiled(&mut fused_cus, &fused, &mut b_fused, &schedule, 1);
        // One instruction fewer issues per wavefront...
        assert!(
            fused_cus[0].cycles() < plain_cus[0].cycles(),
            "MULADD rewrite should shorten the issue stream"
        );
        // ...and the fused numerics agree to FMA rounding.
        for (a, b) in b_plain.buffer(0).iter().zip(b_fused.buffer(0)) {
            assert!((a - b).abs() <= a.abs().max(1.0) * 1e-6);
        }
    }

    /// The masked/lane-shifted feature program: a backward-induction
    /// shaped loop body exercising PushMask, preserve-dst, LaneShift
    /// and a masked scatter. Large enough (per caller) to clear the
    /// small-kernel heuristic when a threaded path must be exercised.
    fn masked_program() -> VProgram {
        VProgram::new(
            4,
            vec![
                VInst::LaneId { dst: 0 },
                VInst::Gather { dst: 1, data: 0, indices: 1 },   // v
                VInst::Gather { dst: 2, data: 2, indices: 1 },   // predicate
                VInst::LaneShift { dst: 3, src: 1, offset: 1 },  // v_up
                VInst::PushMask { mask: 2 },
                VInst::Alu {
                    op: FpOp::MulAdd,
                    dst: 1,
                    srcs: vec![Src::Reg(3), Src::Imm(0.5), Src::Reg(1)],
                },
                VInst::Scatter { src: 1, data: 3, indices: 1 },
                VInst::PopMask,
                VInst::Alu { op: FpOp::Add, dst: 1, srcs: vec![Src::Reg(1), Src::Imm(1.0)] },
                VInst::Scatter { src: 1, data: 4, indices: 1 },
            ],
        )
        .unwrap()
    }

    fn masked_bindings(n: usize) -> Bindings {
        Bindings::new(vec![
            (0..n).map(|i| (i % 13) as f32).collect(),
            (0..n).map(|i| i as f32).collect(),
            (0..n).map(|i| f32::from(i % 3 == 0)).collect(),
            vec![-1.0; n],
            vec![0.0; n],
        ])
    }

    #[test]
    fn masked_alu_preserves_dst_and_masked_scatter_skips_lanes() {
        let n = 64;
        let config = DeviceConfig::default();
        let mut b = masked_bindings(n);
        let schedule = Schedule::new(n, config.wavefront_size, 1);
        let cp = CompiledProgram::compile(&masked_program(), &CompileOptions::default());
        SequentialEngine::new().run_compiled(&mut cus(&config, 1), &cp, &mut b, &schedule, 1);
        for i in 0..n {
            let v0 = (i % 13) as f32;
            let up = if i + 1 < n { ((i + 1) % 13) as f32 } else { 0.0 };
            let live = i % 3 == 0;
            let v1 = if live { up.mul_add(0.5, v0) } else { v0 };
            // Masked scatter: only live lanes stored into buf3.
            let expect3 = if live { v1 } else { -1.0 };
            assert_eq!(b.buffer(3)[i], expect3, "masked scatter lane {i}");
            // Post-pop ALU sees the merged register (preserve-dst).
            assert_eq!(b.buffer(4)[i], v1 + 1.0, "preserve-dst lane {i}");
        }
    }

    #[test]
    fn masked_and_cross_lane_programs_agree_across_backends() {
        // Large enough that the threaded engines do NOT take the
        // small-kernel sequential fallback (10 insts × 64k lanes).
        let n = 1 << 16;
        let config = DeviceConfig::default();
        let cp = CompiledProgram::compile(&masked_program(), &CompileOptions::default());
        assert!(!cp.prefers_sequential(n));
        let schedule = Schedule::new(n, config.wavefront_size, 2);

        let mut seq_b = masked_bindings(n);
        let mut seq_cus = cus(&config, 2);
        SequentialEngine::new().run_compiled(&mut seq_cus, &cp, &mut seq_b, &schedule, 2);

        let mut par_b = masked_bindings(n);
        let mut par_cus = cus(&config, 2);
        ParallelEngine::new().run_compiled(&mut par_cus, &cp, &mut par_b, &schedule, 2);

        // IntraCu must detect the cross-lane shift and still agree (it
        // falls back to the parallel engine).
        let mut icu_b = masked_bindings(n);
        let mut icu_cus = cus(&config, 2);
        IntraCuEngine::with_shards(4).run_compiled(&mut icu_cus, &cp, &mut icu_b, &schedule, 2);

        assert_eq!(seq_b, par_b);
        assert_eq!(seq_b, icu_b);
        for (a, b) in seq_cus.iter().zip(&par_cus) {
            assert_eq!(a.cycles(), b.cycles());
            assert_eq!(a.ledger().total_pj(), b.ledger().total_pj());
        }
        for (a, b) in seq_cus.iter().zip(&icu_cus) {
            assert_eq!(a.cycles(), b.cycles());
            assert_eq!(a.ledger().total_pj(), b.ledger().total_pj());
        }
    }

    #[test]
    fn masked_program_shards_bit_identically_without_lane_shift() {
        // Same shape minus the LaneShift: IntraCu takes the true
        // sharded path and must still match sequentially.
        let p = VProgram::new(
            3,
            vec![
                VInst::Gather { dst: 0, data: 0, indices: 1 },
                VInst::Gather { dst: 2, data: 2, indices: 1 },
                VInst::PushMask { mask: 2 },
                VInst::Alu { op: FpOp::Sqrt, dst: 0, srcs: vec![Src::Reg(0)] },
                VInst::Scatter { src: 0, data: 3, indices: 1 },
                VInst::PopMask,
                VInst::Alu { op: FpOp::Add, dst: 0, srcs: vec![Src::Reg(0), Src::Imm(1.0)] },
                VInst::Scatter { src: 0, data: 4, indices: 1 },
            ],
        )
        .unwrap();
        let n = 1 << 16;
        let cp = CompiledProgram::compile(&p, &CompileOptions::default());
        assert!(!cp.prefers_sequential(n));
        let config = DeviceConfig::default();
        let schedule = Schedule::new(n, config.wavefront_size, 1);

        let mut seq_b = masked_bindings(n);
        let mut seq_cus = cus(&config, 1);
        SequentialEngine::new().run_compiled(&mut seq_cus, &cp, &mut seq_b, &schedule, 3);

        let mut icu_b = masked_bindings(n);
        let mut icu_cus = cus(&config, 1);
        IntraCuEngine::with_shards(4).run_compiled(&mut icu_cus, &cp, &mut icu_b, &schedule, 3);

        assert_eq!(seq_b, icu_b);
        assert_eq!(seq_cus[0].cycles(), icu_cus[0].cycles());
        assert_eq!(seq_cus[0].ledger().total_pj(), icu_cus[0].ledger().total_pj());
    }

    #[test]
    fn small_kernel_heuristic_thresholds_on_lane_ops() {
        let cp = CompiledProgram::compile(&simple_program(), &CompileOptions::default());
        assert!(cp.prefers_sequential(1024)); // 5 × 1024 « 2^18
        assert!(!cp.prefers_sequential(1 << 17)); // 5 × 131072 ≥ 2^18
    }

    #[test]
    fn short_index_buffer_under_full_mask_does_not_panic_at_launch() {
        // The scatter's index buffer is too short for the ND-range, but
        // every lane that would use it is masked off: the launch-time
        // cache must fall back to (never-executed) live reads instead
        // of eagerly converting.
        let p = VProgram::new(
            2,
            vec![
                VInst::Gather { dst: 0, data: 0, indices: 1 },
                VInst::Alu { op: FpOp::Mul, dst: 1, srcs: vec![Src::Reg(0), Src::Imm(0.0)] },
                VInst::PushMask { mask: 1 },
                VInst::Scatter { src: 0, data: 0, indices: 2 },
                VInst::PopMask,
            ],
        )
        .unwrap();
        let n = 64;
        let mut b = Bindings::new(vec![
            vec![1.0; n],
            (0..n).map(|i| i as f32).collect(),
            vec![0.0; 1], // short: would panic if eagerly cached
        ]);
        let config = DeviceConfig::default();
        let schedule = Schedule::new(n, config.wavefront_size, 1);
        let cp = CompiledProgram::compile(&p, &CompileOptions::default());
        SequentialEngine::new().run_compiled(&mut cus(&config, 1), &cp, &mut b, &schedule, 1);
        assert_eq!(b.buffer(0), vec![1.0; n].as_slice());
    }
}
