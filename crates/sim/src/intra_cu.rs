//! The intra-CU execution engine: stream-core-level sharding.
//!
//! [`crate::ParallelEngine`] parallelizes at compute-unit granularity,
//! which caps the speedup at the CU count — useless for the paper's
//! single-CU experiments. This engine shards *within* each compute unit:
//! the 16 stream cores are split into contiguous ranges, and each
//! `(CU, shard)` pair becomes one task on a shared worker pool (workers
//! repeatedly steal the next task from a common queue, so a slow shard
//! never idles the other workers).
//!
//! Sharding at stream-core granularity is only sound because every piece
//! of mutable per-lane state is stream-core-private:
//!
//! - each SC owns its memoization FIFOs and FPU (`lane → SC (lane mod
//!   16)` never crosses shards),
//! - each SC owns its error-injection stream (see
//!   [`crate::ComputeUnit::new`]): a lane's EDS verdict depends only on
//!   (CU seed, its SC, that SC's issue count), never on which other SCs
//!   ran in between.
//!
//! What is *not* private — the ECU, the cycle counter, and the sink
//! pipeline, whose f64 energy sums are addition-order-sensitive — is not
//! touched during shard execution at all. Shards journal their lane
//! events per instruction; after the pool drains, the real CU adopts the
//! shards' stream-core state and the journals are merged
//! instruction-aligned, in lane order, and replayed through the real
//! ECU/cycles/sinks. The replayed stream is exactly what a sequential
//! walk would have flushed, so the [`crate::DeviceReport`] is
//! **bit-identical** across the sequential, parallel and intra-CU
//! backends — for any shard count.
//!
//! Spatial mode ([`crate::ArchMode::Spatial`]) reuses results *across*
//! stream cores within a sub-wavefront slot, so it cannot be sharded;
//! this engine then falls back to the parallel (CU-level) engine. The
//! kernel path also falls back under approximate matching: kernel host
//! code may read any lane of a `VReg`, shards reconstruct non-owned
//! lanes with the pure functional result, and approximate hits are the
//! one case where a committed value can differ from it. (The program
//! path has no such restriction — its lanewise IR never reads a
//! non-owned lane.) Programs whose scatter/gather hazards are not
//! lane-private (see [`crate::program::hazards_are_lane_private`]) fall
//! back to the sequential engine, exactly like the parallel engine
//! does.

use crate::compiled::{run_cu_compiled_queue_sharded, CompiledProgram, LaunchState, ScatterRec};
use crate::compute_unit::{ComputeUnit, ShardJournal};
use crate::config::ArchMode;
use crate::engine::{
    program_needs_sequential_fallback, ExecEngine, ParallelEngine, Schedule, SequentialEngine,
    ShardKernel,
};
use crate::obs::DeviceObs;
use crate::program::Bindings;
use crate::sink::LaneEvent;
use crate::wave::WaveCtx;
use std::ops::Range;
use std::sync::Mutex;
use tm_core::MatchPolicy;

/// The stream-core-sharding engine. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct IntraCuEngine {
    shards_per_cu: Option<usize>,
    obs: Option<DeviceObs>,
}

impl IntraCuEngine {
    /// An engine that picks the shard count from the host's available
    /// parallelism (clamped to the stream-core count; at one shard per
    /// CU it simply delegates to the parallel engine).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with a fixed shard count per CU (clamped to
    /// `1..=stream_cores_per_cu`). Results are shard-count-invariant;
    /// this exists for tests and benchmarks.
    #[must_use]
    pub fn with_shards(shards_per_cu: usize) -> Self {
        Self {
            shards_per_cu: Some(shards_per_cu.max(1)),
            obs: None,
        }
    }

    /// The same engine recording per-task and per-merge wall spans plus
    /// `intra_cu.steals` / `intra_cu.fallback_to_*` counters through
    /// `obs`.
    #[must_use]
    pub fn with_obs(mut self, obs: Option<DeviceObs>) -> Self {
        self.obs = obs;
        self
    }

    fn resolve_shards(&self, num_scs: usize, num_cus: usize) -> usize {
        match self.shards_per_cu {
            Some(n) => n.clamp(1, num_scs),
            None => (worker_count() / num_cus.max(1)).clamp(1, num_scs),
        }
    }
}

fn worker_count() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Splits `num_scs` stream cores into `shards` contiguous ranges, as
/// evenly as possible.
fn shard_ranges(num_scs: usize, shards: usize) -> Vec<Range<usize>> {
    let base = num_scs / shards;
    let extra = num_scs % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// The global work-item ids of `queue`'s wavefronts whose lane position
/// maps to a stream core in `sc_range` — the outputs one shard owns.
fn owned_gids(queue: &[Range<usize>], sc_range: &Range<usize>, num_scs: usize) -> Vec<usize> {
    let mut gids = Vec::new();
    for w in queue {
        for (pos, gid) in w.clone().enumerate() {
            if sc_range.contains(&(pos % num_scs)) {
                gids.push(gid);
            }
        }
    }
    gids
}

/// Merges the per-shard journals of one CU instruction-aligned and
/// replays each instruction's lane-ordered event stream through the real
/// CU's ECU, cycle counter and sinks.
///
/// # Panics
///
/// Panics if the shards' instruction streams diverged (a kernel whose
/// issue sequence depends on non-owned lane values cannot be sharded).
fn replay_journals(cu: &mut ComputeUnit, journals: &[ShardJournal]) {
    let n_instr = journals.first().map_or(0, |j| j.instructions.len());
    for j in journals {
        assert_eq!(
            j.instructions.len(),
            n_instr,
            "intra-CU shards diverged: unequal instruction streams"
        );
    }
    let mut cursors = vec![0usize; journals.len()];
    let mut merged: Vec<LaneEvent> = Vec::new();
    for k in 0..n_instr {
        let op = journals[0].instructions[k].op;
        for j in journals {
            assert_eq!(
                j.instructions[k].op, op,
                "intra-CU shards diverged at instruction {k}"
            );
        }
        merged.clear();
        // K-way merge by lane (each shard's per-instruction run is
        // already lane-ascending; shard counts are small).
        loop {
            let mut best: Option<usize> = None;
            let mut best_lane = usize::MAX;
            for (s, j) in journals.iter().enumerate() {
                if cursors[s] < j.instructions[k].events_end {
                    let lane = j.events[cursors[s]].lane;
                    if lane < best_lane {
                        best_lane = lane;
                        best = Some(s);
                    }
                }
            }
            let Some(s) = best else { break };
            merged.push(journals[s].events[cursors[s]]);
            cursors[s] += 1;
        }
        cu.replay_instruction(op, &mut merged);
    }
}

impl ExecEngine for IntraCuEngine {
    fn run_kernel<K: ShardKernel>(
        &self,
        cus: &mut [ComputeUnit],
        kernel: &mut K,
        schedule: &Schedule,
    ) -> u64 {
        let num_scs = cus[0].config().stream_cores_per_cu;
        let arch = cus[0].config().arch;
        let shards = self.resolve_shards(num_scs, cus.len());
        // Kernel host code may read any lane of a `VReg`, so every shard
        // must see every lane's committed value. Shards reconstruct
        // non-owned lanes with the pure functional result, which is only
        // faithful when hits cannot return approximate values — under
        // approximate matching, shard at CU granularity instead.
        let values_functional = arch == ArchMode::Baseline
            || (arch == ArchMode::Memoized
                && matches!(cus[0].config().policy, MatchPolicy::Exact));
        if arch == ArchMode::Spatial || shards <= 1 || !values_functional {
            if let Some(obs) = &self.obs {
                obs.inc("intra_cu.fallback_to_parallel", 1);
            }
            return ParallelEngine::with_obs(self.obs.clone()).run_kernel(cus, kernel, schedule);
        }
        let ranges = shard_ranges(num_scs, shards);
        let queues = schedule.queues();

        struct Task<K> {
            id: usize,
            cu_idx: usize,
            cu: ComputeUnit,
            shard: K,
            sc_range: Range<usize>,
        }
        let mut tasks: Vec<Task<K>> = Vec::new();
        for (cu_idx, cu) in cus.iter().enumerate() {
            for r in &ranges {
                tasks.push(Task {
                    id: tasks.len(),
                    cu_idx,
                    cu: cu.clone(),
                    shard: kernel.fork(),
                    sc_range: r.clone(),
                });
            }
        }
        let n_tasks = tasks.len();
        let task_queue = Mutex::new(tasks);
        type DoneSlot<K> = Mutex<Option<(Task<K>, ShardJournal)>>;
        let done: Vec<DoneSlot<K>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
        let workers = worker_count().min(n_tasks);
        std::thread::scope(|scope| {
            let task_queue = &task_queue;
            let done = &done;
            let queues = &queues;
            for w in 0..workers {
                let obs = self.obs.clone();
                scope.spawn(move || {
                    let mut executed = 0u64;
                    loop {
                        let Some(mut task) = task_queue.lock().expect("task queue poisoned").pop()
                        else {
                            break;
                        };
                        executed += 1;
                        let task_start = obs.as_ref().map(DeviceObs::now_us);
                        let id = task.id;
                        let mut journal = ShardJournal::default();
                        for wrange in &queues[task.cu_idx] {
                            let mut ctx = WaveCtx::new_sharded(
                                &mut task.cu,
                                wrange.clone().collect(),
                                task.sc_range.clone(),
                                &mut journal,
                            );
                            task.shard.execute(&mut ctx);
                        }
                        if let (Some(obs), Some(start)) = (&obs, task_start) {
                            obs.wall_span(
                                task_span_name(task.cu_idx, &task.sc_range),
                                "intra-cu",
                                w as u64,
                                start,
                                Vec::new(),
                            );
                        }
                        *done[id].lock().expect("result slot poisoned") = Some((task, journal));
                    }
                    if executed > 0 {
                        if let Some(obs) = &obs {
                            obs.inc("intra_cu.steals", executed);
                        }
                    }
                });
            }
        });

        // Deterministic merge, in (CU, shard) index order: adopt each
        // shard's stream-core state, join its kernel outputs, then replay
        // the CU's merged instruction stream through the real accounting.
        let mut results = done
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("execution worker dropped a task")
            })
            .collect::<Vec<_>>()
            .into_iter();
        for (cu_idx, cu) in cus.iter_mut().enumerate() {
            let merge_start = self.obs.as_ref().map(DeviceObs::now_us);
            let mut journals = Vec::with_capacity(shards);
            for _ in 0..shards {
                let (mut task, journal) = results.next().expect("missing shard result");
                debug_assert_eq!(task.cu_idx, cu_idx);
                cu.adopt_shard(&mut task.cu, task.sc_range.clone());
                kernel.join(
                    task.shard,
                    &owned_gids(&queues[cu_idx], &task.sc_range, num_scs),
                );
                journals.push(journal);
            }
            replay_journals(cu, &journals);
            if let (Some(obs), Some(start)) = (&self.obs, merge_start) {
                obs.wall_span(format!("cu{cu_idx}:merge"), "intra-cu", cu_idx as u64, start, Vec::new());
            }
        }
        schedule.wavefronts() as u64
    }

    fn run_compiled(
        &self,
        cus: &mut [ComputeUnit],
        compiled: &CompiledProgram,
        bindings: &mut Bindings,
        schedule: &Schedule,
        in_flight: usize,
    ) -> u64 {
        assert!(in_flight > 0, "need at least one wavefront in flight");
        let num_scs = cus[0].config().stream_cores_per_cu;
        let arch = cus[0].config().arch;
        let shards = self.resolve_shards(num_scs, cus.len());
        if arch == ArchMode::Spatial || shards <= 1 {
            if let Some(obs) = &self.obs {
                obs.inc("intra_cu.fallback_to_parallel", 1);
            }
            return ParallelEngine::with_obs(self.obs.clone())
                .run_compiled(cus, compiled, bindings, schedule, in_flight);
        }
        // Size check before hazard analysis — the latter walks every
        // index buffer, which dwarfs a tiny launch all by itself.
        if compiled.prefers_sequential(schedule.global_size()) {
            // Task spawn + two-stage merge dwarfs a tiny launch.
            if let Some(obs) = &self.obs {
                obs.inc("engine.small_kernel_sequential", 1);
            }
            return SequentialEngine::with_obs(self.obs.clone())
                .run_compiled(cus, compiled, bindings, schedule, in_flight);
        }
        if program_needs_sequential_fallback(compiled.source(), bindings, schedule) {
            if let Some(obs) = &self.obs {
                obs.inc("intra_cu.fallback_to_sequential", 1);
            }
            return SequentialEngine::with_obs(self.obs.clone())
                .run_compiled(cus, compiled, bindings, schedule, in_flight);
        }
        if compiled.source().has_cross_lane_ops() {
            // A LaneShift reads lanes the shard does not own; CU-level
            // parallelism keeps whole wavefronts together.
            if let Some(obs) = &self.obs {
                obs.inc("intra_cu.fallback_cross_lane", 1);
            }
            return ParallelEngine::with_obs(self.obs.clone())
                .run_compiled(cus, compiled, bindings, schedule, in_flight);
        }
        let ranges = shard_ranges(num_scs, shards);
        let queues = schedule.queues();
        let launch = LaunchState::new(
            compiled,
            bindings,
            schedule.max_wavefront_lanes(),
            schedule.global_size(),
        );
        let launch = &launch;

        struct Task {
            id: usize,
            cu_idx: usize,
            cu: ComputeUnit,
            bindings: Bindings,
            sc_range: Range<usize>,
        }
        let mut tasks: Vec<Task> = Vec::new();
        for (cu_idx, cu) in cus.iter().enumerate() {
            for r in &ranges {
                tasks.push(Task {
                    id: tasks.len(),
                    cu_idx,
                    cu: cu.clone(),
                    // Lane-private hazards: a snapshot plus the shard's
                    // own writes is a faithful view for its lanes.
                    bindings: bindings.clone(),
                    sc_range: r.clone(),
                });
            }
        }
        let n_tasks = tasks.len();
        let task_queue = Mutex::new(tasks);
        type ProgramResult = (Task, ShardJournal, Vec<ScatterRec>);
        let done: Vec<Mutex<Option<ProgramResult>>> =
            (0..n_tasks).map(|_| Mutex::new(None)).collect();
        let workers = worker_count().min(n_tasks);
        std::thread::scope(|scope| {
            let task_queue = &task_queue;
            let done = &done;
            let queues = &queues;
            for w in 0..workers {
                let obs = self.obs.clone();
                scope.spawn(move || {
                    let mut executed = 0u64;
                    loop {
                        let Some(mut task) = task_queue.lock().expect("task queue poisoned").pop()
                        else {
                            break;
                        };
                        executed += 1;
                        let task_start = obs.as_ref().map(DeviceObs::now_us);
                        let id = task.id;
                        let mut journal = ShardJournal::default();
                        let mut scatters = Vec::new();
                        run_cu_compiled_queue_sharded(
                            &mut task.cu,
                            compiled,
                            launch,
                            &queues[task.cu_idx],
                            &mut task.bindings,
                            in_flight,
                            &task.sc_range,
                            num_scs,
                            &mut journal,
                            &mut scatters,
                        );
                        if let (Some(obs), Some(start)) = (&obs, task_start) {
                            obs.wall_span(
                                task_span_name(task.cu_idx, &task.sc_range),
                                "intra-cu",
                                w as u64,
                                start,
                                Vec::new(),
                            );
                        }
                        *done[id].lock().expect("result slot poisoned") =
                            Some((task, journal, scatters));
                    }
                    if executed > 0 {
                        if let Some(obs) = &obs {
                            obs.inc("intra_cu.steals", executed);
                        }
                    }
                });
            }
        });

        let mut results = done
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("execution worker dropped a task")
            })
            .collect::<Vec<_>>()
            .into_iter();
        for (cu_idx, cu) in cus.iter_mut().enumerate() {
            let merge_start = self.obs.as_ref().map(DeviceObs::now_us);
            let mut journals = Vec::with_capacity(shards);
            let mut scatter_logs = Vec::with_capacity(shards);
            for _ in 0..shards {
                let (mut task, journal, scatters) = results.next().expect("missing shard result");
                debug_assert_eq!(task.cu_idx, cu_idx);
                cu.adopt_shard(&mut task.cu, task.sc_range.clone());
                journals.push(journal);
                scatter_logs.push(scatters);
            }
            replay_journals(cu, &journals);
            replay_scatters(bindings, &scatter_logs);
            if let (Some(obs), Some(start)) = (&self.obs, merge_start) {
                obs.wall_span(format!("cu{cu_idx}:merge"), "intra-cu", cu_idx as u64, start, Vec::new());
            }
        }
        schedule.wavefronts() as u64
    }
}

/// The wall-span name for one `(CU, stream-core shard)` task.
fn task_span_name(cu_idx: usize, sc_range: &Range<usize>) -> String {
    format!("cu{cu_idx}:sc{}-{}", sc_range.start, sc_range.end)
}

/// K-way merges the shards' scatter logs by `(ordinal, lane)` — each log
/// is already sorted by that key — and applies them in order, which is
/// exactly the sequential engine's write order for this CU's queue.
fn replay_scatters(bindings: &mut Bindings, logs: &[Vec<ScatterRec>]) {
    let mut cursors = vec![0usize; logs.len()];
    loop {
        let mut best: Option<usize> = None;
        let mut best_key = (u32::MAX, u32::MAX);
        for (s, log) in logs.iter().enumerate() {
            if let Some(r) = log.get(cursors[s]) {
                let key = (r.ordinal, r.lane);
                if key < best_key {
                    best_key = key;
                    best = Some(s);
                }
            }
        }
        let Some(s) = best else { break };
        let r = logs[s][cursors[s]];
        bindings.apply_write(r.data, r.index, r.value);
        cursors[s] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_contiguously() {
        let r = shard_ranges(16, 5);
        assert_eq!(r.len(), 5);
        assert_eq!(r[0], 0..4);
        assert_eq!(r.last().unwrap().end, 16);
        let total: usize = r.iter().map(Range::len).sum();
        assert_eq!(total, 16);
        for w in r.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn owned_gids_partition_the_queue() {
        let queue = vec![0..64, 128..150];
        let a = owned_gids(&queue, &(0..8), 16);
        let b = owned_gids(&queue, &(8..16), 16);
        let mut all: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..64).chain(128..150).collect();
        assert_eq!(all, expect);
        // Lane 0 of each wavefront maps to SC 0.
        assert!(a.contains(&0) && a.contains(&128));
        assert!(!b.contains(&0));
    }
}
