//! An Evergreen-style GPGPU simulator with per-FPU temporal memoization.
//!
//! This crate stands in for the paper's modified Multi2Sim: a
//! cycle-approximate model of the AMD Radeon HD 5870's execute stage that
//! reproduces the one property the temporal-memoization technique lives on
//! — **the order in which operand sets arrive at each FPU**.
//!
//! # Architecture (paper §3)
//!
//! - A [`Device`] contains compute units; each [`ComputeUnit`] contains 16
//!   stream cores executing one wavefront of 64 work-items in SIMD
//!   lock-step.
//! - A wavefront is split into four *sub-wavefronts* at the execute stage:
//!   lane *l* executes on stream core *(l mod 16)* in time-multiplex slot
//!   *(l div 16)*. Consecutive operands on a given FPU therefore come from
//!   work-items 16 apart, every cycle — the "congested temporal value
//!   locality" of §4.1.
//! - Each stream core instantiates one pipelined FPU (and one
//!   [`tm_core::MemoModule`]) per opcode it executes, mirroring the paper's
//!   private FIFO per individual FPU.
//!
//! # Programming model
//!
//! Two ways to express a kernel:
//!
//! - implement [`Kernel`] against [`WaveCtx`], a wavefront-wide SIMT
//!   context: every ALU call (e.g. [`WaveCtx::mul`]) issues one Evergreen
//!   vector instruction over all active lanes, routing each lane through
//!   its stream core's FPU + memoization module, charging cycles and
//!   energy per the Table-2 action; or
//! - build a [`program::VProgram`] (a straight-line vector-instruction
//!   list) and run it with [`Device::run_program`], which can *interleave*
//!   multiple wavefronts per compute unit the way real hardware does.
//!
//! Three architecture variants are selectable via [`ArchMode`]: the
//! baseline resilient design, the paper's temporal memoization, and the
//! authors' earlier cross-lane *spatial* memoization. Set
//! `DeviceConfig::trace_depth` to record per-instruction [`TraceEvent`]s
//! and analyse them with [`locality`] (operand entropy, LRU stack
//! distances).
//!
//! # Examples
//!
//! ```
//! use tm_sim::{Device, DeviceConfig, Kernel, VReg, WaveCtx};
//!
//! /// y[i] = sqrt(x[i]) over a constant input — maximal value locality.
//! struct SqrtAll {
//!     out: Vec<f32>,
//! }
//!
//! impl Kernel for SqrtAll {
//!     fn name(&self) -> &'static str {
//!         "sqrt_all"
//!     }
//!     fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
//!         let x = VReg::splat(ctx.lanes(), 9.0);
//!         let y = ctx.sqrt(&x);
//!         for (i, gid) in ctx.lane_ids().to_vec().into_iter().enumerate() {
//!             self.out[gid] = y[i];
//!         }
//!     }
//! }
//!
//! let mut device = Device::new(DeviceConfig::default());
//! let mut kernel = SqrtAll { out: vec![0.0; 256] };
//! device.run(&mut kernel, 256);
//! assert!(kernel.out.iter().all(|&v| v == 3.0));
//! let report = device.report();
//! // After one cold miss per stream-core FIFO, every identical operand hits.
//! assert!(report.weighted_hit_rate() > 0.85);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiled;
mod compute_unit;
mod config;
mod device;
pub mod engine;
pub mod intra_cu;
mod kernel;
pub mod locality;
pub mod obs;
pub mod pool;
pub mod program;
mod report;
pub mod sink;
mod snapshot;
mod stream_core;
mod trace;
mod wave;

pub use compiled::{CompileOptions, CompiledProgram};
pub use compute_unit::{ComputeUnit, OpTally};
pub use config::{
    ArchMode, ConfigError, DeviceConfig, DeviceConfigBuilder, ErrorMode, ExecBackend,
};
pub use device::Device;
pub use engine::{ExecEngine, ParallelEngine, Schedule, SequentialEngine, ShardKernel};
pub use intra_cu::IntraCuEngine;
pub use kernel::Kernel;
pub use obs::DeviceObs;
pub use pool::{DevicePool, PoolStats};
pub use report::{DeviceReport, OpReport};
pub use sink::{
    EventSink, LaneEvent, LaneEventKind, MetricsSink, SinkKind, SinkPipeline, VectorEvent,
    METRICS_CHANNELS,
};
pub use snapshot::{DeviceSnapshot, SnapshotError, SNAPSHOT_VERSION};
pub use stream_core::{LaneUnit, StreamCore};
pub use trace::{TraceBuffer, TraceEvent};
pub use wave::{VReg, WaveCtx};

pub mod prelude {
    //! One-stop imports for kernels, benchmarks and examples.
    //!
    //! Re-exports the dozen types almost every driver needs — the
    //! device and its validated configuration, the execution backends,
    //! the report, and the matching/error knobs — so call sites write
    //! `use tm_sim::prelude::*;` instead of four deep-path `use` lines.
    //!
    //! # Examples
    //!
    //! ```
    //! use tm_sim::prelude::*;
    //!
    //! let config = DeviceConfig::builder()
    //!     .with_policy(MatchPolicy::Exact)
    //!     .with_backend(ExecBackend::Parallel)
    //!     .build()
    //!     .unwrap();
    //! let device = Device::new(config);
    //! assert_eq!(device.report().wavefronts, 0);
    //! ```
    pub use crate::config::{
        ArchMode, ConfigError, DeviceConfig, DeviceConfigBuilder, ErrorMode, ExecBackend,
    };
    pub use crate::device::Device;
    pub use crate::engine::ShardKernel;
    pub use crate::kernel::Kernel;
    pub use crate::report::{DeviceReport, OpReport};
    pub use crate::wave::{VReg, WaveCtx};
    pub use tm_core::MatchPolicy;
    pub use tm_timing::{ErrorModelSpec, RecoveryPolicy};
}
