//! The top-level device: dispatch and reporting.

use crate::compiled::{CompileOptions, CompiledProgram};
use crate::compute_unit::ComputeUnit;
use crate::config::{DeviceConfig, ExecBackend};
use crate::engine::{ExecEngine, ParallelEngine, Schedule, SequentialEngine, ShardKernel};
use crate::intra_cu::IntraCuEngine;
use crate::kernel::Kernel;
use crate::locality::LocalitySummary;
use crate::obs::DeviceObs;
use crate::program::{Bindings, VProgram};
use crate::report::{DeviceReport, OpReport};
use tm_core::MemoStats;
use tm_fpu::ALL_OPS;
use tm_obs::{ArgValue, SharedRecorder, TelemetryHub};

/// A simulated Evergreen-style GPGPU.
///
/// See the crate-level docs for the architecture and an end-to-end
/// example.
#[derive(Debug, Clone)]
pub struct Device {
    config: DeviceConfig,
    compute_units: Vec<ComputeUnit>,
    wavefronts_dispatched: u64,
    obs: Option<DeviceObs>,
}

/// Wall-clock and per-CU cycle snapshots taken just before a launch
/// (only when a recorder or hub is attached).
struct LaunchMark {
    wall: std::time::Instant,
    start_us: u64,
    cu_cycles: Vec<u64>,
}

impl Device {
    /// Builds a device from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`DeviceConfig::validate`]).
    #[must_use]
    pub fn new(config: DeviceConfig) -> Self {
        config.validate();
        let compute_units = (0..config.compute_units)
            .map(|i| ComputeUnit::new(&config, i))
            .collect();
        Self {
            config,
            compute_units,
            wavefronts_dispatched: 0,
            obs: None,
        }
    }

    /// Attaches a span recorder: every subsequent launch records a
    /// wall-clock `launch:<name>` span, per-CU cycle-stamped launch and
    /// wavefront spans, and engine overhead counters into `rec` (see
    /// [`crate::obs`]). Several devices may share one recorder; each
    /// attach allocates fresh track groups.
    ///
    /// Cycle-track timestamps are the CU cycle counters, so calling
    /// [`Device::reset_stats`] while a recorder is attached restarts the
    /// cycle timebase and can produce overlapping cycle spans — detach
    /// first (or use a fresh device) when a well-formed trace matters.
    ///
    /// A previously attached telemetry hub stays bound.
    pub fn attach_recorder(&mut self, rec: &SharedRecorder) {
        let hub = self.obs.as_mut().and_then(DeviceObs::take_hub);
        let mut obs = DeviceObs::attach(rec);
        if let Some((hub, scope)) = hub {
            obs.bind_hub(&hub, &scope);
        }
        self.obs = Some(obs);
    }

    /// Detaches the span recorder, if any; later launches record no
    /// spans. A telemetry hub, if attached, stays bound.
    pub fn detach_recorder(&mut self) {
        self.obs = self
            .obs
            .as_mut()
            .and_then(DeviceObs::take_hub)
            .map(|(hub, scope)| DeviceObs::hub_only(&hub, &scope));
    }

    /// Attaches a telemetry hub under a freshly allocated scope prefix
    /// and returns that scope. Every subsequent launch publishes live
    /// series under it: a per-kernel latency sketch
    /// (`<scope>launch_us.<kernel>`), launch/wavefront counters, a
    /// cumulative hit-rate gauge, error/recovery tallies and per-
    /// component energy gauges — plus the engine overhead counters
    /// (steals, fallbacks) the engines publish through [`DeviceObs`].
    ///
    /// Composes with [`Device::attach_recorder`]; either may be attached
    /// first. [`Device::reset_stats`] clears the device's hub series.
    pub fn attach_hub(&mut self, hub: &TelemetryHub) -> String {
        let scope = hub.alloc_scope("sim");
        self.attach_hub_scoped(hub, &scope);
        scope
    }

    /// Attaches a telemetry hub under a caller-chosen scope prefix
    /// (normally ending in `.`). Long-running callers that rebuild
    /// devices — e.g. a campaign building one device per attempt — use a
    /// fixed scope so the hub holds one set of series instead of growing
    /// per device.
    pub fn attach_hub_scoped(&mut self, hub: &TelemetryHub, scope: &str) {
        match &mut self.obs {
            Some(obs) => obs.bind_hub(hub, scope),
            None => self.obs = Some(DeviceObs::hub_only(hub, scope)),
        }
    }

    /// Detaches the telemetry hub, if any, leaving its published series
    /// in place. A span recorder, if attached, stays bound.
    pub fn detach_hub(&mut self) {
        if let Some(obs) = &mut self.obs {
            let _ = obs.take_hub();
            if !obs.has_recorder() {
                self.obs = None;
            }
        }
    }

    /// The attached tracing handle, if any.
    #[must_use]
    pub const fn obs(&self) -> Option<&DeviceObs> {
        self.obs.as_ref()
    }

    /// Snapshots clocks before a launch (no-op without a recorder or
    /// hub).
    fn mark_launch(&self) -> Option<LaunchMark> {
        self.obs.as_ref().map(|obs| LaunchMark {
            wall: std::time::Instant::now(),
            start_us: obs.now_us(),
            cu_cycles: self.compute_units.iter().map(ComputeUnit::cycles).collect(),
        })
    }

    /// Closes a launch: one wall span for the whole dispatch (wall track
    /// 0) and one cycle span per CU that advanced (cycle track = CU
    /// index) into the recorder, and the live series into the hub —
    /// whichever backends are attached.
    fn record_launch(&self, mark: Option<LaunchMark>, name: &str, backend: &str, schedule: &Schedule) {
        let (Some(obs), Some(mark)) = (&self.obs, mark) else {
            return;
        };
        if obs.has_recorder() {
            for (cu_idx, (cu, before)) in
                self.compute_units.iter().zip(&mark.cu_cycles).enumerate()
            {
                let after = cu.cycles();
                if after > *before {
                    obs.cycle_span(
                        format!("launch:{name}"),
                        "kernel",
                        cu_idx as u64,
                        *before,
                        after,
                        Vec::new(),
                    );
                }
            }
            obs.wall_span(
                format!("launch:{name}"),
                "kernel",
                0,
                mark.start_us,
                vec![
                    ("backend".to_string(), ArgValue::Str(backend.to_string())),
                    (
                        "global_size".to_string(),
                        ArgValue::U64(schedule.global_size() as u64),
                    ),
                    (
                        "wavefronts".to_string(),
                        ArgValue::U64(schedule.wavefronts() as u64),
                    ),
                ],
            );
        }
        self.publish_launch(obs, name, schedule, mark.wall.elapsed().as_secs_f64() * 1e6);
    }

    /// Publishes one finished launch into the attached hub (no-op
    /// without one): latency sketch, launch/wavefront counters, and the
    /// cumulative hit-rate / error / energy state of the device. All
    /// reads — the simulation state is untouched, so reports stay
    /// bit-identical with a hub attached.
    fn publish_launch(&self, obs: &DeviceObs, name: &str, schedule: &Schedule, elapsed_us: f64) {
        let Some((hub, scope)) = obs.hub() else {
            return;
        };
        hub.counter_add(&format!("{scope}launches"), 1);
        hub.counter_add(&format!("{scope}wavefronts"), schedule.wavefronts() as u64);
        hub.observe(&format!("{scope}launch_us.{name}"), elapsed_us);

        let total: MemoStats = ALL_OPS.iter().map(|&op| self.op_stats(op)).sum();
        if total.lookups > 0 {
            hub.gauge_set(
                &format!("{scope}hit_rate"),
                total.hits as f64 / total.lookups as f64,
            );
        }

        // ECU tap: cumulative recovery tallies summed across CUs.
        let mut recoveries = 0u64;
        let mut stall_cycles = 0u64;
        for cu in &self.compute_units {
            let [(_, r), (_, s)] = cu.ecu().telemetry_counters();
            recoveries += r;
            stall_cycles += s;
        }
        hub.gauge_set(&format!("{scope}recoveries"), recoveries as f64);
        hub.gauge_set(&format!("{scope}recovery_stall_cycles"), stall_cycles as f64);
        hub.gauge_set(
            &format!("{scope}errors_injected"),
            self.compute_units
                .iter()
                .map(ComputeUnit::errors_injected)
                .sum::<u64>() as f64,
        );

        // Energy tap: one gauge per breakdown component.
        let mut energy = tm_energy::EnergyLedger::new();
        for cu in &self.compute_units {
            energy.merge(cu.ledger());
        }
        for (component, pj) in energy.breakdown().named_components() {
            hub.gauge_set(&format!("{scope}energy_pj.{component}"), pj);
        }
    }

    /// The device configuration.
    #[must_use]
    pub const fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The compute units.
    #[must_use]
    pub fn compute_units(&self) -> &[ComputeUnit] {
        &self.compute_units
    }

    /// Number of wavefronts dispatched so far.
    #[must_use]
    pub const fn wavefronts_dispatched(&self) -> u64 {
        self.wavefronts_dispatched
    }

    /// Mutable compute-unit access for the snapshot restore path.
    pub(crate) fn compute_units_mut(&mut self) -> &mut [ComputeUnit] {
        &mut self.compute_units
    }

    /// Restores the dispatch counter from a snapshot.
    pub(crate) fn set_wavefronts_dispatched(&mut self, n: u64) {
        self.wavefronts_dispatched = n;
    }

    /// The intra-CU engine the configuration asks for: auto-sized from
    /// host parallelism unless a shard count is pinned.
    fn intra_cu_engine(&self) -> IntraCuEngine {
        let engine = match self.config.intra_cu_shards {
            Some(n) => IntraCuEngine::with_shards(n),
            None => IntraCuEngine::new(),
        };
        engine.with_obs(self.obs.clone())
    }

    /// The schedule the device's geometry induces for `global_size`
    /// work-items — the scheduling layer both engines share.
    fn schedule(&self, global_size: usize) -> Schedule {
        Schedule::new(
            global_size,
            self.config.wavefront_size,
            self.compute_units.len(),
        )
    }

    /// Runs `kernel` over an ND-range of `global_size` work-items on the
    /// **sequential reference engine** (any kernel, sized or not).
    ///
    /// The range is split into wavefronts of `wavefront_size` work-items
    /// (the trailing wavefront may be partial); wavefront *w* executes on
    /// compute unit *(w mod CUs)*, mirroring the ultra-threaded
    /// dispatcher's round-robin. Kernels that also implement
    /// [`ShardKernel`] can go through [`Device::dispatch`] instead, which
    /// honours the configured [`ExecBackend`].
    ///
    /// # Panics
    ///
    /// Panics if `global_size` is zero.
    pub fn run<K: Kernel + ?Sized>(&mut self, kernel: &mut K, global_size: usize) {
        let schedule = self.schedule(global_size);
        let name = kernel.name();
        let mark = self.mark_launch();
        self.wavefronts_dispatched += SequentialEngine::with_obs(self.obs.clone())
            .run_any_kernel(&mut self.compute_units, kernel, &schedule);
        self.record_launch(mark, name, ExecBackend::Sequential.name(), &schedule);
    }

    /// Runs a [`ShardKernel`] over an ND-range through the configured
    /// [`ExecBackend`] — the sequential reference engine by default, or
    /// one worker thread per compute unit under
    /// [`ExecBackend::Parallel`]. Both produce bit-identical reports;
    /// see [`crate::engine`].
    ///
    /// # Panics
    ///
    /// Panics if `global_size` is zero.
    pub fn dispatch<K: ShardKernel>(&mut self, kernel: &mut K, global_size: usize) {
        let schedule = self.schedule(global_size);
        let name = kernel.name();
        let mark = self.mark_launch();
        self.wavefronts_dispatched += match self.config.backend {
            ExecBackend::Sequential => SequentialEngine::with_obs(self.obs.clone()).run_kernel(
                &mut self.compute_units,
                kernel,
                &schedule,
            ),
            ExecBackend::Parallel => ParallelEngine::with_obs(self.obs.clone()).run_kernel(
                &mut self.compute_units,
                kernel,
                &schedule,
            ),
            ExecBackend::IntraCu => {
                self.intra_cu_engine()
                    .run_kernel(&mut self.compute_units, kernel, &schedule)
            }
        };
        self.record_launch(mark, name, self.config.backend.name(), &schedule);
    }

    /// Runs a [`VProgram`] over an ND-range with `in_flight` wavefronts
    /// interleaved per compute unit.
    ///
    /// With `in_flight = 1` this matches [`Device::run`]'s
    /// wavefront-at-a-time order. Larger values model the hardware's
    /// wavefront interleaving: the scheduler round-robins one vector
    /// instruction from each resident wavefront, so consecutive operands
    /// on an FPU come from *different* wavefronts — the stress case for
    /// the 2-entry FIFO's temporal locality.
    ///
    /// Both engines honour the wavefront→CU schedule and per-CU order, so
    /// the backend choice never changes results or statistics; programs
    /// with a gather-after-scatter hazard silently fall back to the
    /// sequential engine (see [`crate::engine`]).
    ///
    /// # Panics
    ///
    /// Panics if `global_size` or `in_flight` is zero, or a
    /// gather/scatter index leaves its buffer.
    pub fn run_program(
        &mut self,
        program: &VProgram,
        bindings: &mut Bindings,
        global_size: usize,
        in_flight: usize,
    ) {
        let compile_start = self.obs.as_ref().map(DeviceObs::now_us);
        let compiled = CompiledProgram::compile(program, &CompileOptions::default());
        if let (Some(obs), Some(start)) = (&self.obs, compile_start) {
            obs.wall_span(
                "program:compile".to_string(),
                "compile",
                0,
                start,
                vec![
                    (
                        "instructions".to_string(),
                        ArgValue::U64(program.len() as u64),
                    ),
                    (
                        "packets".to_string(),
                        ArgValue::U64(compiled.packet_count() as u64),
                    ),
                ],
            );
        }
        self.run_compiled(&compiled, bindings, global_size, in_flight);
    }

    /// Runs pre-lowered bytecode (see [`CompiledProgram::compile`]) with
    /// `in_flight` wavefronts interleaved per compute unit — the
    /// compile-once path for stage loops and campaigns. Semantics match
    /// [`Device::run_program`].
    ///
    /// # Panics
    ///
    /// Panics if `global_size` or `in_flight` is zero, or a
    /// gather/scatter index leaves its buffer.
    pub fn run_compiled(
        &mut self,
        compiled: &CompiledProgram,
        bindings: &mut Bindings,
        global_size: usize,
        in_flight: usize,
    ) {
        let schedule = self.schedule(global_size);
        let mark = self.mark_launch();
        self.wavefronts_dispatched += match self.config.backend {
            ExecBackend::Sequential => SequentialEngine::with_obs(self.obs.clone()).run_compiled(
                &mut self.compute_units,
                compiled,
                bindings,
                &schedule,
                in_flight,
            ),
            ExecBackend::Parallel => ParallelEngine::with_obs(self.obs.clone()).run_compiled(
                &mut self.compute_units,
                compiled,
                bindings,
                &schedule,
                in_flight,
            ),
            ExecBackend::IntraCu => self.intra_cu_engine().run_compiled(
                &mut self.compute_units,
                compiled,
                bindings,
                &schedule,
                in_flight,
            ),
        };
        self.record_launch(mark, "program", self.config.backend.name(), &schedule);
    }

    /// Aggregated memoization statistics for `op` across the device.
    #[must_use]
    pub fn op_stats(&self, op: tm_fpu::FpOp) -> MemoStats {
        self.compute_units.iter().map(|cu| cu.op_stats(op)).sum()
    }

    /// All retained trace events across compute units (empty unless the
    /// configuration enabled tracing via `trace_depth`).
    pub fn trace_events(&self) -> impl Iterator<Item = &crate::TraceEvent> {
        self.compute_units.iter().flat_map(|cu| cu.trace().events())
    }

    /// Per-CU locality summaries from the online profiler — one row set
    /// per compute unit, empty unless
    /// [`DeviceConfig::locality_tracking`] is enabled.
    #[must_use]
    pub fn locality_summaries(&self) -> Vec<Vec<LocalitySummary>> {
        self.compute_units
            .iter()
            .filter_map(|cu| cu.locality().map(super::sink::LocalitySink::summaries))
            .collect()
    }

    /// Resets every statistic on the device (see
    /// [`ComputeUnit::reset_stats`]) while keeping FIFO contents — the
    /// per-kernel measurement boundary.
    ///
    /// Any telemetry-hub series published under this device's scope are
    /// cleared too, so a warm-reused device (the pool pattern) never
    /// leaks telemetry from the previous job into the next.
    pub fn reset_stats(&mut self) {
        for cu in &mut self.compute_units {
            cu.reset_stats();
        }
        self.wavefronts_dispatched = 0;
        if let Some(obs) = &self.obs {
            obs.clear_hub_series();
        }
    }

    /// Builds the full post-run report.
    #[must_use]
    pub fn report(&self) -> DeviceReport {
        let mut per_op = Vec::new();
        for op in ALL_OPS {
            let stats = self.op_stats(op);
            let (lane_instructions, energy_pj) = self
                .compute_units
                .iter()
                .flat_map(|cu| cu.tallies())
                .filter(|(&o, _)| o == op)
                .fold((0u64, 0.0f64), |(n, e), (_, t)| {
                    (n + t.lane_instructions, e + t.energy_pj)
                });
            if lane_instructions > 0 {
                per_op.push(OpReport {
                    op,
                    stats,
                    lane_instructions,
                    energy_pj,
                });
            }
        }
        let mut energy = tm_energy::EnergyLedger::new();
        for cu in &self.compute_units {
            energy.merge(cu.ledger());
        }
        DeviceReport {
            per_op,
            energy: energy.breakdown(),
            cycles_max: self
                .compute_units
                .iter()
                .map(ComputeUnit::cycles)
                .max()
                .unwrap_or(0),
            cycles_total: self.compute_units.iter().map(ComputeUnit::cycles).sum(),
            recoveries: self.compute_units.iter().map(|cu| cu.ecu().recoveries()).sum(),
            recovery_stall_cycles: self
                .compute_units
                .iter()
                .map(|cu| cu.ecu().recovery_cycles())
                .sum(),
            errors_injected: self
                .compute_units
                .iter()
                .map(ComputeUnit::errors_injected)
                .sum(),
            wavefronts: self.wavefronts_dispatched,
            spatial_hits: self
                .compute_units
                .iter()
                .flat_map(|cu| cu.tallies())
                .map(|(_, t)| t.spatial_hits)
                .sum(),
            spatial_masked_errors: self
                .compute_units
                .iter()
                .flat_map(|cu| cu.tallies())
                .map(|(_, t)| t.spatial_masked_errors)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArchMode, ErrorMode};
    use crate::wave::{VReg, WaveCtx};
    use tm_fpu::FpOp;

    struct AddOne {
        out: Vec<f32>,
    }

    impl Kernel for AddOne {
        fn name(&self) -> &'static str {
            "add_one"
        }
        fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
            let x = ctx.iota();
            let one = ctx.splat(1.0);
            let y = ctx.add(&x, &one);
            for (l, &gid) in ctx.lane_ids().to_vec().iter().enumerate() {
                self.out[gid] = y[l];
            }
        }
    }

    #[test]
    fn run_covers_full_ndrange_including_partial_wavefront() {
        let mut device = Device::new(DeviceConfig::default());
        let n = 100; // 64 + a partial wavefront of 36
        let mut k = AddOne { out: vec![0.0; n] };
        device.run(&mut k, n);
        for (i, v) in k.out.iter().enumerate() {
            assert_eq!(*v, i as f32 + 1.0);
        }
        assert_eq!(device.wavefronts_dispatched(), 2);
    }

    #[test]
    fn wavefronts_round_robin_across_cus() {
        let mut device = Device::new(DeviceConfig::builder().with_compute_units(2).build().unwrap());
        let mut k = AddOne {
            out: vec![0.0; 256],
        };
        device.run(&mut k, 256);
        for cu in device.compute_units() {
            assert!(cu.cycles() > 0, "both CUs should have executed work");
        }
    }

    #[test]
    fn report_lists_only_activated_ops() {
        let mut device = Device::new(DeviceConfig::default());
        let mut k = AddOne { out: vec![0.0; 64] };
        device.run(&mut k, 64);
        let report = device.report();
        assert_eq!(report.per_op.len(), 1);
        assert_eq!(report.per_op[0].op, FpOp::Add);
        assert_eq!(report.per_op[0].lane_instructions, 64);
        assert!(report.energy.total_pj() > 0.0);
    }

    struct ConstSqrt;
    impl Kernel for ConstSqrt {
        fn name(&self) -> &'static str {
            "const_sqrt"
        }
        fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
            let x = VReg::splat(ctx.lanes(), 2.0);
            let _ = ctx.sqrt(&x);
        }
    }

    #[test]
    fn memoized_beats_baseline_on_redundant_work() {
        let run = |arch: ArchMode| {
            let mut device = Device::new(DeviceConfig::builder().with_arch(arch).build().unwrap());
            device.run(&mut ConstSqrt, 4096);
            device.report().energy.total_pj()
        };
        let memo = run(ArchMode::Memoized);
        let baseline = run(ArchMode::Baseline);
        assert!(
            memo < baseline * 0.6,
            "constant operands should memoize well: memo={memo} baseline={baseline}"
        );
    }

    #[test]
    fn error_injection_shows_up_in_report() {
        let config = DeviceConfig::builder().with_error_mode(ErrorMode::FixedRate(0.5)).build().unwrap();
        let mut device = Device::new(config);
        device.run(&mut ConstSqrt, 1024);
        let report = device.report();
        assert!(report.errors_injected > 0);
        let sqrt = &report.per_op[0];
        assert_eq!(
            sqrt.stats.errors_seen,
            report.errors_injected,
            "every injected error is either masked or recovered"
        );
        assert_eq!(
            sqrt.stats.masked_errors + sqrt.stats.recoveries,
            report.errors_injected
        );
    }

    #[test]
    #[should_panic(expected = "empty ND-range")]
    fn zero_size_dispatch_panics() {
        let mut device = Device::new(DeviceConfig::default());
        device.run(&mut ConstSqrt, 0);
    }

    #[test]
    fn tracing_records_events_and_locality_predicts_hits() {
        let config = DeviceConfig::builder()
            .with_compute_units(1)
            .with_trace_depth(100_000).build().unwrap();
        let mut device = Device::new(config);
        device.run(&mut ConstSqrt, 1024);
        let events: Vec<_> = device.trace_events().copied().collect();
        assert_eq!(events.len(), 1024);
        // Constant operands ⇒ zero entropy and near-perfect predicted
        // reuse, matching the measured hit rate.
        let entropy = crate::locality::operand_entropy_bits(events.iter());
        assert_eq!(entropy, 0.0);
        let profile = crate::locality::StackDistanceProfile::from_events(events.iter());
        let predicted = profile.hit_rate_at_depth(2);
        let measured = device.report().weighted_hit_rate();
        assert!(
            (predicted - measured).abs() < 1e-9,
            "LRU prediction {predicted} vs measured {measured}"
        );
    }

    #[test]
    fn tracing_disabled_by_default() {
        let mut device = Device::new(DeviceConfig::default());
        device.run(&mut ConstSqrt, 64);
        assert_eq!(device.trace_events().count(), 0);
    }

    #[test]
    fn reset_stats_keeps_fifo_contents() {
        let mut device = Device::new(DeviceConfig::default());
        device.run(&mut ConstSqrt, 256);
        assert!(device.report().total_instructions() > 0);
        device.reset_stats();
        let cleared = device.report();
        assert_eq!(cleared.total_instructions(), 0);
        assert_eq!(cleared.total_energy_pj(), 0.0);
        assert_eq!(cleared.wavefronts, 0);
        // FIFOs survived: the very first wavefront after the reset hits.
        device.run(&mut ConstSqrt, 64);
        let warm = device.report();
        assert_eq!(
            warm.weighted_hit_rate(),
            1.0,
            "warm FIFOs should hit immediately after a stats reset"
        );
    }

    #[test]
    fn per_stage_error_mode_hits_deep_pipelines_harder() {
        struct RecipAndAdd;
        impl Kernel for RecipAndAdd {
            fn name(&self) -> &'static str {
                "recip_and_add"
            }
            fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
                let x = ctx.iota();
                let _ = ctx.recip(&x); // 16 stages
                let _ = ctx.add(&x, &x); // 4 stages
            }
        }
        // Memoized mode records per-op error statistics; iota operands
        // are unique per work-item, so every access is a (recorded) miss.
        let config = DeviceConfig::builder()
            .with_error_mode(ErrorMode::PerStageRate(0.01))
            .with_compute_units(1)
            .with_seed(4).build().unwrap();
        let mut device = Device::new(config);
        device.run(&mut RecipAndAdd, 16384);
        let report = device.report();
        let recip = report.op(FpOp::Recip).unwrap();
        let add = report.op(FpOp::Add).unwrap();
        // 1-(1-p)^16 ≈ 14.9 % vs 1-(1-p)^4 ≈ 3.9 % — about 3.8x.
        let recip_rate = recip.stats.errors_seen as f64 / recip.lane_instructions as f64;
        let add_rate = add.stats.errors_seen as f64 / add.lane_instructions as f64;
        assert!(
            recip_rate > 2.5 * add_rate,
            "deep pipeline should err more: recip {recip_rate:.3} vs add {add_rate:.3}"
        );
    }

    #[test]
    fn spatial_mode_reuses_within_slots() {
        // Constant operands: in every 16-lane slot, one lane executes and
        // 15 reuse — spatial hit rate of exactly 15/16.
        let mut device = Device::new(DeviceConfig::builder().with_arch(ArchMode::Spatial).build().unwrap());
        device.run(&mut ConstSqrt, 1024);
        let report = device.report();
        assert_eq!(report.spatial_hits, 1024 / 16 * 15);
        assert!((report.spatial_hit_rate() - 15.0 / 16.0).abs() < 1e-12);
        // The per-FPU FIFOs are power-gated in this mode.
        assert_eq!(report.total_stats().lookups, 0);
    }

    #[test]
    fn spatial_mode_masks_errors_on_reused_lanes() {
        let config = DeviceConfig::builder()
            .with_arch(ArchMode::Spatial)
            .with_error_mode(ErrorMode::FixedRate(0.5)).build().unwrap();
        let mut device = Device::new(config);
        device.run(&mut ConstSqrt, 1024);
        let report = device.report();
        assert!(report.spatial_masked_errors > 0);
        // Errors on executing lanes still go to the ECU; reused lanes are free.
        assert_eq!(
            report.recoveries + report.spatial_masked_errors,
            report.errors_injected
        );
    }

    #[test]
    fn spatial_mode_is_correct_on_varied_inputs() {
        let mut memo_dev = Device::new(DeviceConfig::default());
        let mut spatial_dev = Device::new(DeviceConfig::builder().with_arch(ArchMode::Spatial).build().unwrap());
        let mut a = AddOne { out: vec![0.0; 200] };
        let mut b = AddOne { out: vec![0.0; 200] };
        memo_dev.run(&mut a, 200);
        spatial_dev.run(&mut b, 200);
        assert_eq!(a.out, b.out);
    }

    #[test]
    fn temporal_beats_spatial_on_temporal_locality() {
        // Values recur over time (across wavefronts) but are distinct
        // within each slot — the workload shape the paper argues for.
        struct TimeLocal;
        impl Kernel for TimeLocal {
            fn name(&self) -> &'static str {
                "time_local"
            }
            fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
                // lane value = sc index (distinct within a slot), same for
                // every slot... so make it distinct per lane within slot
                // but identical across wavefronts.
                let x = VReg::from_fn(ctx.lanes(), |l| (l % 16) as f32 * 1.25 + 1.0);
                let _ = ctx.sqrt(&x);
            }
        }
        let run = |arch: ArchMode| {
            let mut device = Device::new(
                DeviceConfig::builder()
                    .with_arch(arch)
                    .with_compute_units(1).build().unwrap(),
            );
            device.run(&mut TimeLocal, 4096);
            device.report()
        };
        let temporal = run(ArchMode::Memoized);
        let spatial = run(ArchMode::Spatial);
        assert!(temporal.weighted_hit_rate() > 0.9);
        assert!(spatial.spatial_hit_rate() < 0.1);
        assert!(temporal.total_energy_pj() < spatial.total_energy_pj());
    }
}
