//! The wavefront SIMT execution context and vector registers.

use crate::compute_unit::{ComputeUnit, ShardJournal};
use std::ops::{Index, Range};
use tm_fpu::FpOp;

/// A wavefront-wide vector register: one `f32` per lane.
///
/// # Examples
///
/// ```
/// use tm_sim::VReg;
///
/// let r = VReg::from_fn(4, |lane| lane as f32 * 2.0);
/// assert_eq!(r[3], 6.0);
/// assert_eq!(r.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VReg {
    values: Vec<f32>,
}

impl VReg {
    /// A register with every lane set to `value`.
    #[must_use]
    pub fn splat(lanes: usize, value: f32) -> Self {
        Self {
            values: vec![value; lanes],
        }
    }

    /// Builds a register by evaluating `f(lane)`.
    #[must_use]
    pub fn from_fn(lanes: usize, f: impl FnMut(usize) -> f32) -> Self {
        Self {
            values: (0..lanes).map(f).collect(),
        }
    }

    /// Wraps a per-lane value vector.
    #[must_use]
    pub fn from_vec(values: Vec<f32>) -> Self {
        Self { values }
    }

    /// Number of lanes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the register has zero lanes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The per-lane values.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Copies the values out.
    #[must_use]
    pub fn to_vec(&self) -> Vec<f32> {
        self.values.clone()
    }

    /// Iterates over lane values.
    pub fn iter(&self) -> impl Iterator<Item = f32> + '_ {
        self.values.iter().copied()
    }
}

impl Index<usize> for VReg {
    type Output = f32;
    fn index(&self, lane: usize) -> &f32 {
        &self.values[lane]
    }
}

impl From<Vec<f32>> for VReg {
    fn from(values: Vec<f32>) -> Self {
        Self { values }
    }
}

macro_rules! unary_op {
    ($(#[$doc:meta])* $name:ident, $op:expr) => {
        $(#[$doc])*
        pub fn $name(&mut self, a: &VReg) -> VReg {
            self.alu($op, &[a])
        }
    };
}

macro_rules! binary_op {
    ($(#[$doc:meta])* $name:ident, $op:expr) => {
        $(#[$doc])*
        pub fn $name(&mut self, a: &VReg, b: &VReg) -> VReg {
            self.alu($op, &[a, b])
        }
    };
}

/// The SIMT execution context handed to a [`crate::Kernel`] for one
/// wavefront.
///
/// Every ALU method issues one Evergreen vector instruction across the
/// active lanes of the wavefront, through the owning compute unit's stream
/// cores (and their FPUs + memoization modules). Divergence is expressed
/// with the [`WaveCtx::push_mask`] / [`WaveCtx::pop_mask`] execution-mask
/// stack, mirroring the hardware's predication.
pub struct WaveCtx<'a> {
    cu: &'a mut ComputeUnit,
    lane_ids: Vec<usize>,
    mask_stack: Vec<Vec<bool>>,
    active: Vec<bool>,
    shard: Option<ShardScope<'a>>,
}

/// Restricts a [`WaveCtx`] to the lanes owned by one intra-CU shard: ALU
/// issues execute only the stream cores in `sc_range` and journal their
/// events instead of reaching the compute unit's sinks.
pub(crate) struct ShardScope<'a> {
    pub(crate) sc_range: Range<usize>,
    pub(crate) journal: &'a mut ShardJournal,
}

impl<'a> WaveCtx<'a> {
    /// Creates the context for one wavefront. `lane_ids` are the global
    /// work-item ids of the wavefront's lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lane_ids` is empty.
    #[must_use]
    pub fn new(cu: &'a mut ComputeUnit, lane_ids: Vec<usize>) -> Self {
        assert!(!lane_ids.is_empty(), "a wavefront needs at least one lane");
        let lanes = lane_ids.len();
        Self {
            cu,
            lane_ids,
            mask_stack: Vec::new(),
            active: vec![true; lanes],
            shard: None,
        }
    }

    /// A context that executes only the lanes mapped to the stream cores
    /// in `sc_range`, journaling their events for the intra-CU engine's
    /// ordered merge. Results of non-owned lanes read `0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `lane_ids` is empty.
    #[must_use]
    pub(crate) fn new_sharded(
        cu: &'a mut ComputeUnit,
        lane_ids: Vec<usize>,
        sc_range: Range<usize>,
        journal: &'a mut ShardJournal,
    ) -> Self {
        let mut ctx = Self::new(cu, lane_ids);
        ctx.shard = Some(ShardScope { sc_range, journal });
        ctx
    }

    /// Number of lanes in this wavefront.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lane_ids.len()
    }

    /// Global work-item ids of the lanes.
    #[must_use]
    pub fn lane_ids(&self) -> &[usize] {
        &self.lane_ids
    }

    /// The current effective execution mask.
    #[must_use]
    pub fn active_mask(&self) -> &[bool] {
        &self.active
    }

    /// A register holding every lane's global work-item id as `f32`.
    #[must_use]
    pub fn iota(&self) -> VReg {
        VReg::from_fn(self.lanes(), |l| self.lane_ids[l] as f32)
    }

    /// A register with every lane set to `value` (convenience splat).
    #[must_use]
    pub fn splat(&self, value: f32) -> VReg {
        VReg::splat(self.lanes(), value)
    }

    /// Pushes a predicate onto the execution-mask stack: lanes where
    /// `cond` is `false` become inactive until the matching
    /// [`WaveCtx::pop_mask`].
    ///
    /// # Panics
    ///
    /// Panics if `cond.len()` differs from the lane count.
    pub fn push_mask(&mut self, cond: &[bool]) {
        assert_eq!(cond.len(), self.lanes(), "mask length mismatch");
        self.mask_stack.push(cond.to_vec());
        self.recompute_active();
    }

    /// Pops the innermost predicate.
    ///
    /// # Panics
    ///
    /// Panics if the mask stack is empty.
    pub fn pop_mask(&mut self) {
        assert!(self.mask_stack.pop().is_some(), "mask stack underflow");
        self.recompute_active();
    }

    fn recompute_active(&mut self) {
        let lanes = self.lanes();
        self.active = (0..lanes)
            .map(|l| self.mask_stack.iter().all(|m| m[l]))
            .collect();
    }

    /// Issues an arbitrary vector ALU instruction — the generic form of
    /// the named methods below, for code that dispatches on [`FpOp`]
    /// dynamically.
    ///
    /// # Panics
    ///
    /// Panics if `srcs.len()` differs from the opcode's arity or any
    /// register's lane count differs from the wavefront's.
    pub fn alu(&mut self, op: FpOp, srcs: &[&VReg]) -> VReg {
        assert!(srcs.len() <= tm_fpu::MAX_ARITY, "{op}: too many operands");
        for s in srcs {
            assert_eq!(s.len(), self.lanes(), "{op}: vector register length mismatch");
        }
        // Operand slices live in a fixed-size stack array — no per-call
        // heap allocation on the issue path.
        let mut slices = [[].as_slice(); tm_fpu::MAX_ARITY];
        for (slot, s) in slices.iter_mut().zip(srcs.iter()) {
            *slot = s.as_slice();
        }
        let result = match self.shard.as_mut() {
            Some(scope) => {
                let mut out = Vec::new();
                self.cu.issue_vector_sharded(
                    op,
                    &slices[..srcs.len()],
                    &self.active,
                    scope.sc_range.clone(),
                    true,
                    &mut out,
                    scope.journal,
                );
                out
            }
            None => self.cu.issue_vector(op, &slices[..srcs.len()], &self.active),
        };
        VReg::from_vec(result)
    }

    binary_op!(
        /// `ADD`: lane-wise `a + b`.
        add,
        FpOp::Add
    );
    binary_op!(
        /// `SUB`: lane-wise `a - b`.
        sub,
        FpOp::Sub
    );
    binary_op!(
        /// `MUL_IEEE`: lane-wise `a * b`.
        mul,
        FpOp::Mul
    );
    binary_op!(
        /// `MAX`: lane-wise maximum.
        max,
        FpOp::Max
    );
    binary_op!(
        /// `MIN`: lane-wise minimum.
        min,
        FpOp::Min
    );
    binary_op!(
        /// `SETE`: lane-wise `a == b` as `1.0` / `0.0`.
        set_eq,
        FpOp::SetEq
    );
    binary_op!(
        /// `SETGT`: lane-wise `a > b` as `1.0` / `0.0`.
        set_gt,
        FpOp::SetGt
    );
    binary_op!(
        /// `SETGE`: lane-wise `a >= b` as `1.0` / `0.0`.
        set_ge,
        FpOp::SetGe
    );
    binary_op!(
        /// `SETNE`: lane-wise `a != b` as `1.0` / `0.0`.
        set_ne,
        FpOp::SetNe
    );

    unary_op!(
        /// `RECIP_IEEE`: lane-wise `1 / a` (the 16-cycle unit).
        recip,
        FpOp::Recip
    );
    unary_op!(
        /// `RECIPSQRT_IEEE`: lane-wise `1 / sqrt(a)`.
        rsq,
        FpOp::RecipSqrt
    );
    unary_op!(
        /// `SQRT_IEEE`: lane-wise square root.
        sqrt,
        FpOp::Sqrt
    );
    unary_op!(
        /// `EXP_IEEE`: lane-wise `2^a`.
        exp2,
        FpOp::Exp2
    );
    unary_op!(
        /// `LOG_IEEE`: lane-wise `log2(a)`.
        log2,
        FpOp::Log2
    );
    unary_op!(
        /// `SIN`: lane-wise sine.
        sin,
        FpOp::Sin
    );
    unary_op!(
        /// `COS`: lane-wise cosine.
        cos,
        FpOp::Cos
    );
    unary_op!(
        /// `FLOOR`: lane-wise floor.
        floor,
        FpOp::Floor
    );
    unary_op!(
        /// `CEIL`: lane-wise ceiling.
        ceil,
        FpOp::Ceil
    );
    unary_op!(
        /// `TRUNC`: lane-wise truncation toward zero.
        trunc,
        FpOp::Trunc
    );
    unary_op!(
        /// `RNDNE`: lane-wise round to nearest even.
        round_ne,
        FpOp::RoundNearest
    );
    unary_op!(
        /// `FRACT`: lane-wise fractional part.
        fract,
        FpOp::Fract
    );
    unary_op!(
        /// Lane-wise absolute value.
        abs,
        FpOp::Abs
    );
    unary_op!(
        /// Lane-wise negation.
        neg,
        FpOp::Neg
    );
    unary_op!(
        /// `FLT_TO_INT`: lane-wise truncating conversion (FP2INT).
        fp2int,
        FpOp::FpToInt
    );
    unary_op!(
        /// `INT_TO_FLT`: lane-wise integer-to-float rounding.
        int2fp,
        FpOp::IntToFp
    );

    /// `MULADD_IEEE`: lane-wise fused `a * b + c`.
    pub fn muladd(&mut self, a: &VReg, b: &VReg, c: &VReg) -> VReg {
        self.alu(FpOp::MulAdd, &[a, b, c])
    }

    /// `CNDE`: lane-wise `if cond == 0.0 { when_zero } else { otherwise }`.
    pub fn cnd_eq(&mut self, cond: &VReg, when_zero: &VReg, otherwise: &VReg) -> VReg {
        self.alu(FpOp::CndEq, &[cond, when_zero, otherwise])
    }

    /// Convenience select on a boolean-ish predicate register
    /// (`1.0`/`0.0` as produced by the `SET*` instructions): returns
    /// `when_true` where `pred != 0`, `when_false` elsewhere. Lowered to a
    /// single `CNDE`.
    pub fn select(&mut self, pred: &VReg, when_true: &VReg, when_false: &VReg) -> VReg {
        self.cnd_eq(pred, when_false, when_true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn with_ctx<R>(lanes: usize, f: impl FnOnce(&mut WaveCtx<'_>) -> R) -> R {
        let config = DeviceConfig::default();
        let mut cu = ComputeUnit::new(&config, 0);
        let mut ctx = WaveCtx::new(&mut cu, (0..lanes).collect());
        f(&mut ctx)
    }

    #[test]
    fn basic_vector_arithmetic() {
        with_ctx(64, |ctx| {
            let a = ctx.iota();
            let b = ctx.splat(2.0);
            let sum = ctx.add(&a, &b);
            assert_eq!(sum[10], 12.0);
            let prod = ctx.mul(&a, &b);
            assert_eq!(prod[10], 20.0);
            let fma = ctx.muladd(&a, &b, &sum);
            assert_eq!(fma[10], 32.0);
        });
    }

    #[test]
    fn masks_disable_lanes() {
        with_ctx(8, |ctx| {
            let cond: Vec<bool> = (0..8).map(|l| l % 2 == 0).collect();
            ctx.push_mask(&cond);
            let a = ctx.splat(9.0);
            let r = ctx.sqrt(&a);
            assert_eq!(r[0], 3.0);
            assert_eq!(r[1], 0.0, "inactive lane must not execute");
            ctx.pop_mask();
            let r = ctx.sqrt(&a);
            assert_eq!(r[1], 3.0);
        });
    }

    #[test]
    fn nested_masks_intersect() {
        with_ctx(4, |ctx| {
            ctx.push_mask(&[true, true, false, false]);
            ctx.push_mask(&[true, false, true, false]);
            assert_eq!(ctx.active_mask(), &[true, false, false, false]);
            ctx.pop_mask();
            assert_eq!(ctx.active_mask(), &[true, true, false, false]);
        });
    }

    #[test]
    fn select_lowered_through_cnde() {
        with_ctx(4, |ctx| {
            let a = ctx.iota();
            let two = ctx.splat(2.0);
            let pred = ctx.set_ge(&a, &two); // lanes 2,3
            let yes = ctx.splat(1.0);
            let no = ctx.splat(-1.0);
            let r = ctx.select(&pred, &yes, &no);
            assert_eq!(r.as_slice(), &[-1.0, -1.0, 1.0, 1.0]);
        });
    }

    #[test]
    #[should_panic(expected = "mask stack underflow")]
    fn pop_on_empty_stack_panics() {
        with_ctx(4, |ctx| ctx.pop_mask());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_register_length_panics() {
        with_ctx(4, |ctx| {
            let short = VReg::splat(3, 1.0);
            let ok = ctx.splat(1.0);
            let _ = ctx.add(&short, &ok);
        });
    }

    #[test]
    fn vreg_utilities() {
        let r = VReg::from_vec(vec![1.0, 2.0]);
        assert!(!r.is_empty());
        assert_eq!(r.to_vec(), vec![1.0, 2.0]);
        assert_eq!(r.iter().sum::<f32>(), 3.0);
        let s: VReg = vec![5.0].into();
        assert_eq!(s[0], 5.0);
    }
}
