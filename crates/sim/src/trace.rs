//! Instruction tracing — the raw material for value-locality analysis.
//!
//! The paper's modified Multi2Sim "collect[s] the statistics for computing
//! the temporal value locality out of 27 single precision floating-point
//! instructions" (§5). This module is that collector: when
//! [`crate::DeviceConfig::trace_depth`] is non-zero, every lane
//! instruction appends a [`TraceEvent`] to its compute unit's ring buffer,
//! and [`crate::locality`] turns the streams into entropy and
//! reuse-distance statistics.

use std::collections::VecDeque;
use tm_fpu::{FpOp, Operands};

/// One lane-level FP instruction as it passed through a stream core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// The opcode.
    pub op: FpOp,
    /// The input operands.
    pub operands: Operands,
    /// The architecturally visible result (`Q_Pipe`).
    pub result: f32,
    /// Whether the memoization LUT hit.
    pub hit: bool,
    /// Whether the EDS sensors flagged a timing violation.
    pub error: bool,
    /// Stream core index within the compute unit.
    pub stream_core: usize,
    /// Lane index within the wavefront.
    pub lane: usize,
    /// Issue cycle.
    pub cycle: u64,
}

/// A bounded ring buffer of trace events.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer holding up to `capacity` events (`0` disables tracing).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            events: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            dropped: 0,
        }
    }

    /// Whether tracing is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event (oldest events fall off when full).
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that fell off the ring.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears the buffer (counters included).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(v: f32) -> TraceEvent {
        TraceEvent {
            op: FpOp::Add,
            operands: Operands::binary(v, v),
            result: v + v,
            hit: false,
            error: false,
            stream_core: 0,
            lane: 0,
            cycle: 0,
        }
    }

    #[test]
    fn zero_capacity_disables() {
        let mut buf = TraceBuffer::new(0);
        assert!(!buf.is_enabled());
        buf.record(event(1.0));
        assert!(buf.is_empty());
    }

    #[test]
    fn ring_drops_oldest() {
        let mut buf = TraceBuffer::new(2);
        buf.record(event(1.0));
        buf.record(event(2.0));
        buf.record(event(3.0));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 1);
        let first = buf.events().next().unwrap();
        assert_eq!(first.result, 4.0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut buf = TraceBuffer::new(2);
        buf.record(event(1.0));
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.dropped(), 0);
    }
}
