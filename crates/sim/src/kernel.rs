//! The kernel abstraction.

use crate::wave::WaveCtx;

/// A data-parallel device kernel, the unit [`crate::Device::run`] executes.
///
/// This plays the role of an OpenCL kernel in the paper's setup: the
/// runtime splits the ND-range into wavefronts and calls
/// [`Kernel::execute`] once per wavefront with a SIMT context. Work-item
/// identity comes from [`WaveCtx::lane_ids`]; inputs and outputs live on
/// the kernel value itself (the memory system is assumed resilient and is
/// not modeled, per §5.1 of the paper).
///
/// # Examples
///
/// ```
/// use tm_sim::{Device, DeviceConfig, Kernel, WaveCtx};
///
/// /// out[i] = in[i] * in[i]
/// struct Square {
///     input: Vec<f32>,
///     output: Vec<f32>,
/// }
///
/// impl Kernel for Square {
///     fn name(&self) -> &'static str {
///         "square"
///     }
///     fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
///         let x = tm_sim::VReg::from_fn(ctx.lanes(), |l| self.input[ctx.lane_ids()[l]]);
///         let y = ctx.mul(&x, &x);
///         for (l, &gid) in ctx.lane_ids().to_vec().iter().enumerate() {
///             self.output[gid] = y[l];
///         }
///     }
/// }
///
/// let mut device = Device::new(DeviceConfig::default());
/// let mut k = Square {
///     input: (0..128).map(|i| i as f32).collect(),
///     output: vec![0.0; 128],
/// };
/// device.run(&mut k, 128);
/// assert_eq!(k.output[5], 25.0);
/// ```
pub trait Kernel {
    /// A short kernel name for reports.
    fn name(&self) -> &'static str;

    /// Executes one wavefront.
    fn execute(&mut self, ctx: &mut WaveCtx<'_>);
}
