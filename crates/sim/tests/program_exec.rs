//! Integration tests of the vector-program interpreter and wavefront
//! interleaving.

use tm_fpu::FpOp;
use tm_sim::program::{Bindings, Src, VInst, VProgram};
use tm_sim::{Device, DeviceConfig};

/// out[i] = sqrt(in[i]) * 2.0 + in[i]
fn sample_program() -> VProgram {
    VProgram::new(
        3,
        vec![
            VInst::Gather {
                dst: 0,
                data: 0,
                indices: 1,
            },
            VInst::Alu {
                op: FpOp::Sqrt,
                dst: 2,
                srcs: vec![Src::Reg(0)],
            },
            VInst::Alu {
                op: FpOp::MulAdd,
                dst: 2,
                srcs: vec![Src::Reg(2), Src::Imm(2.0), Src::Reg(0)],
            },
            VInst::Scatter {
                src: 2,
                data: 2,
                indices: 1,
            },
        ],
    )
    .expect("valid program")
}

fn sample_bindings(n: usize, values: impl Fn(usize) -> f32) -> Bindings {
    Bindings::new(vec![
        (0..n).map(values).collect(),
        (0..n).map(|i| i as f32).collect(),
        vec![0.0; n],
    ])
}

fn expected(v: f32) -> f32 {
    v.sqrt().mul_add(2.0, v)
}

#[test]
fn program_computes_correctly_at_any_interleaving() {
    let n = 512;
    for in_flight in [1usize, 2, 4, 8] {
        let mut bindings = sample_bindings(n, |i| (i % 9) as f32);
        let mut device = Device::new(DeviceConfig::default());
        device.run_program(&sample_program(), &mut bindings, n, in_flight);
        for i in 0..n {
            let v = (i % 9) as f32;
            assert_eq!(
                bindings.buffer(2)[i],
                expected(v),
                "lane {i} at in_flight {in_flight}"
            );
        }
    }
}

#[test]
fn interleaving_degrades_temporal_locality() {
    // A program with two SQRT instructions over the same operands. The
    // values are constant per stream core *within* a wavefront but
    // distinct *across* wavefronts, so the second SQRT's hits depend on
    // the FIFO surviving from the first — exactly what interleaving
    // destroys.
    let two_sqrts = VProgram::new(
        3,
        vec![
            VInst::Gather {
                dst: 0,
                data: 0,
                indices: 1,
            },
            VInst::Alu {
                op: FpOp::Sqrt,
                dst: 2,
                srcs: vec![Src::Reg(0)],
            },
            VInst::Alu {
                op: FpOp::Sqrt,
                dst: 2,
                srcs: vec![Src::Reg(0)],
            },
            VInst::Scatter {
                src: 2,
                data: 2,
                indices: 1,
            },
        ],
    )
    .unwrap();
    let n = 64 * 32; // 32 wavefronts on one CU
    let run = |in_flight: usize| {
        let mut bindings = sample_bindings(n, |i| ((i / 64) * 100 + i % 16) as f32);
        let mut device = Device::new(DeviceConfig::builder().with_compute_units(1).build().unwrap());
        device.run_program(&two_sqrts, &mut bindings, n, in_flight);
        device.report().weighted_hit_rate()
    };
    let serial = run(1);
    let interleaved = run(8);
    assert!(
        serial > 0.8,
        "serial execution should reuse across the two SQRTs, got {serial}"
    );
    assert!(
        interleaved < serial - 0.05,
        "interleaving should cost hit rate: serial {serial} vs interleaved {interleaved}"
    );
}

#[test]
fn in_flight_one_matches_closure_api_hit_rate() {
    // The IR path at in_flight = 1 must produce the same FIFO streams as
    // the closure API for an equivalent kernel.
    use tm_sim::{Kernel, VReg, WaveCtx};

    struct Equivalent {
        input: Vec<f32>,
    }
    impl Kernel for Equivalent {
        fn name(&self) -> &'static str {
            "equivalent"
        }
        fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
            let x = VReg::from_fn(ctx.lanes(), |l| self.input[ctx.lane_ids()[l]]);
            let s = ctx.sqrt(&x);
            let two = ctx.splat(2.0);
            let _ = ctx.muladd(&s, &two, &x);
        }
    }

    let n = 1024;
    let values = |i: usize| (i % 7) as f32;

    let mut program_dev = Device::new(DeviceConfig::default());
    let mut bindings = sample_bindings(n, values);
    program_dev.run_program(&sample_program(), &mut bindings, n, 1);

    let mut closure_dev = Device::new(DeviceConfig::default());
    let mut kernel = Equivalent {
        input: (0..n).map(values).collect(),
    };
    closure_dev.run(&mut kernel, n);

    let a = program_dev.report();
    let b = closure_dev.report();
    assert_eq!(a.total_instructions(), b.total_instructions());
    assert!(
        (a.weighted_hit_rate() - b.weighted_hit_rate()).abs() < 1e-12,
        "IR {} vs closure {}",
        a.weighted_hit_rate(),
        b.weighted_hit_rate()
    );
}

#[test]
fn lane_id_instruction_provides_global_ids() {
    let program = VProgram::new(
        1,
        vec![
            VInst::LaneId { dst: 0 },
            VInst::Scatter {
                src: 0,
                data: 1,
                indices: 0,
            },
        ],
    )
    .unwrap();
    let n = 100;
    // Buffer 0 holds identity indices (also used as the scatter target's
    // index stream); buffer 1 receives the lane ids.
    let mut bindings = Bindings::new(vec![
        (0..n).map(|i| i as f32).collect(),
        vec![0.0; n],
    ]);
    let mut device = Device::new(DeviceConfig::default());
    device.run_program(&program, &mut bindings, n, 2);
    for (i, v) in bindings.buffer(1).iter().enumerate() {
        assert_eq!(*v, i as f32);
    }
}

#[test]
fn errors_are_transparent_through_the_program_path() {
    use tm_sim::ErrorMode;
    let n = 512;
    let mut bindings = sample_bindings(n, |i| (i % 5) as f32);
    let config = DeviceConfig::builder()
        .with_error_mode(ErrorMode::FixedRate(0.2))
        .with_seed(5).build().unwrap();
    let mut device = Device::new(config);
    device.run_program(&sample_program(), &mut bindings, n, 4);
    assert!(device.report().errors_injected > 0);
    for i in 0..n {
        assert_eq!(bindings.buffer(2)[i], expected((i % 5) as f32));
    }
}

#[test]
#[should_panic(expected = "at least one wavefront")]
fn zero_in_flight_rejected() {
    let mut bindings = sample_bindings(64, |_| 1.0);
    let mut device = Device::new(DeviceConfig::default());
    device.run_program(&sample_program(), &mut bindings, 64, 0);
}
