//! Architecture-level integration tests: the lane → stream-core mapping,
//! sub-wavefront time multiplexing, cross-kernel accumulation, and the
//! independence properties the paper's recovery story relies on.

use tm_core::MatchPolicy;
use tm_fpu::FpOp;
use tm_sim::{ArchMode, Device, DeviceConfig, ErrorMode, Kernel, VReg, WaveCtx};

/// A kernel whose per-lane value is computed by a caller-supplied closure.
struct LaneValued<F: Fn(usize) -> f32> {
    value: F,
    op: FpOp,
}

impl<F: Fn(usize) -> f32> Kernel for LaneValued<F> {
    fn name(&self) -> &'static str {
        "lane_valued"
    }

    fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
        let x = VReg::from_fn(ctx.lanes(), |l| (self.value)(ctx.lane_ids()[l]));
        let _ = match self.op {
            FpOp::Sqrt => ctx.sqrt(&x),
            FpOp::Recip => ctx.recip(&x),
            _ => {
                let y = ctx.splat(1.0);
                ctx.add(&x, &y)
            }
        };
    }
}

fn one_cu() -> DeviceConfig {
    DeviceConfig::builder().with_compute_units(1).build().unwrap()
}

#[test]
fn values_repeating_with_stride_16_hit_maximally() {
    // Lane gid and gid+16 land on the same stream core in consecutive
    // sub-wavefront slots; equal values there are exactly what a 2-entry
    // FIFO catches.
    let mut device = Device::new(one_cu());
    let mut kernel = LaneValued {
        value: |gid| (gid % 16) as f32 + 1.0, // constant per SC, forever
        op: FpOp::Sqrt,
    };
    device.run(&mut kernel, 4096);
    let rate = device.report().weighted_hit_rate();
    // One cold miss per SC FIFO, everything else hits.
    assert!(rate > 0.99, "stride-16 locality should saturate, got {rate}");
}

#[test]
fn values_distinct_along_each_stream_core_miss() {
    // Values constant within a slot but changing every slot defeat the
    // temporal FIFO: each SC sees a new operand each cycle.
    let mut device = Device::new(one_cu());
    let mut kernel = LaneValued {
        value: |gid| (gid / 16) as f32 * 1.0001 + 1.0, // new value per slot
        op: FpOp::Sqrt,
    };
    device.run(&mut kernel, 4096);
    let rate = device.report().weighted_hit_rate();
    assert!(rate < 0.05, "per-slot-unique values should miss, got {rate}");
}

#[test]
fn slot_constant_values_favor_spatial_reuse() {
    // The mirror image: within a slot all 16 lanes share one value —
    // invisible to per-SC FIFOs, ideal for cross-lane (spatial) reuse.
    let make = |arch| {
        let mut device = Device::new(one_cu().rebuild().with_arch(arch).build().unwrap());
        let mut kernel = LaneValued {
            value: |gid| (gid / 16) as f32 * 1.0001 + 1.0,
            op: FpOp::Sqrt,
        };
        device.run(&mut kernel, 4096);
        device.report()
    };
    let temporal = make(ArchMode::Memoized);
    let spatial = make(ArchMode::Spatial);
    assert!(temporal.weighted_hit_rate() < 0.05);
    assert!(
        spatial.spatial_hit_rate() > 0.9,
        "slot-constant values should reuse spatially, got {}",
        spatial.spatial_hit_rate()
    );
}

#[test]
fn stats_accumulate_across_kernel_launches() {
    // One device, two launches: the FIFOs persist, so the second launch
    // of the same values is all hits.
    let mut device = Device::new(one_cu());
    let mut kernel = LaneValued {
        value: |gid| (gid % 8) as f32,
        op: FpOp::Recip,
    };
    device.run(&mut kernel, 512);
    let after_first = device.report().total_stats();
    device.run(&mut kernel, 512);
    let after_second = device.report().total_stats();
    assert_eq!(after_second.lookups, 2 * after_first.lookups);
    assert!(after_second.hits > after_first.hits);
}

#[test]
fn per_op_fifos_are_independent() {
    // Interleaving two op types must not evict each other's contexts.
    struct TwoOps;
    impl Kernel for TwoOps {
        fn name(&self) -> &'static str {
            "two_ops"
        }
        fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
            let x = ctx.splat(4.0);
            for _ in 0..8 {
                let _ = ctx.sqrt(&x);
                let _ = ctx.recip(&x);
            }
        }
    }
    let mut device = Device::new(one_cu());
    device.run(&mut TwoOps, 64);
    let report = device.report();
    // After the cold miss, every access of both types hits: the SQRT
    // stream never disturbs the RECIP FIFO and vice versa.
    for op in [FpOp::Sqrt, FpOp::Recip] {
        let r = report.op(op).expect("op activated");
        let expected_misses = 16; // one per SC FIFO
        assert_eq!(r.stats.misses, expected_misses, "{op}");
    }
}

#[test]
fn errors_do_not_leak_between_architectures_with_same_seed() {
    // The injector stream is a function of (seed, cu index) alone, so the
    // two architectures face identical error sequences — the comparisons
    // in the paper (and our figs) are paired, not just sampled.
    let run = |arch| {
        let config = one_cu()
            .rebuild()
            .with_arch(arch)
            .with_error_mode(ErrorMode::FixedRate(0.1))
            .with_seed(77)
            .build()
            .unwrap();
        let mut device = Device::new(config);
        let mut kernel = LaneValued {
            value: |gid| (gid % 4) as f32,
            op: FpOp::Sqrt,
        };
        device.run(&mut kernel, 2048);
        device.report().errors_injected
    };
    assert_eq!(run(ArchMode::Memoized), run(ArchMode::Baseline));
}

#[test]
fn approximate_policy_device_wide() {
    let config = one_cu()
        .rebuild()
        .with_policy(MatchPolicy::threshold(0.25))
        .build()
        .unwrap();
    let mut device = Device::new(config);
    // Values jitter within the threshold around a per-SC base.
    let mut kernel = LaneValued {
        value: |gid| (gid % 16) as f32 + 0.1 * ((gid / 16 % 3) as f32),
        op: FpOp::Sqrt,
    };
    device.run(&mut kernel, 4096);
    let rate = device.report().weighted_hit_rate();
    assert!(rate > 0.95, "jitter within threshold should hit, got {rate}");
}

#[test]
fn deep_recip_pipeline_and_short_add_coexist() {
    struct Mixed;
    impl Kernel for Mixed {
        fn name(&self) -> &'static str {
            "mixed"
        }
        fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
            let x = ctx.iota();
            let r = ctx.recip(&x);
            let _ = ctx.add(&r, &x);
        }
    }
    let mut device = Device::new(one_cu());
    device.run(&mut Mixed, 128);
    let report = device.report();
    assert_eq!(report.op(FpOp::Recip).unwrap().lane_instructions, 128);
    assert_eq!(report.op(FpOp::Add).unwrap().lane_instructions, 128);
    assert!(report.cycles_max > 0);
}
