//! Observability integration tests: attaching a span recorder, a
//! windowed metrics sink or a live telemetry hub must never perturb
//! simulation results, the emitted trace must be schema-valid Chrome
//! trace JSON covering every execution backend, and
//! `Device::reset_stats` must clear windowed series *and* hub series so
//! a reused device never leaks observability state across measurement
//! boundaries.

use tm_obs::{validate_chrome_trace, HubMetric, SharedRecorder, TelemetryHub};
use tm_sim::{
    Device, DeviceConfig, ErrorMode, ExecBackend, Kernel, MetricsSink, ShardKernel, VReg,
    WaveCtx,
};

const WINDOW: u64 = 64;

/// A shardable kernel with per-stream-core value locality and a mix of
/// opcodes — enough structure to populate hit/miss, error and energy
/// channels of the metrics sink.
struct MixedShard {
    out: Vec<f32>,
}

impl MixedShard {
    fn new(n: usize) -> Self {
        Self { out: vec![0.0; n] }
    }
}

impl Kernel for MixedShard {
    fn name(&self) -> &'static str {
        "mixed_shard"
    }
    fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
        let x = VReg::from_fn(ctx.lanes(), |l| (l % 16) as f32 + 1.5);
        let s = ctx.sqrt(&x);
        let y = ctx.add(&s, &x);
        for (l, &gid) in ctx.lane_ids().to_vec().iter().enumerate() {
            self.out[gid] = y[l];
        }
    }
}

impl ShardKernel for MixedShard {
    fn fork(&self) -> Self {
        Self::new(self.out.len())
    }
    fn join(&mut self, shard: Self, gids: &[usize]) {
        for &gid in gids {
            self.out[gid] = shard.out[gid];
        }
    }
}

const ALL_BACKENDS: [ExecBackend; 3] =
    [ExecBackend::Sequential, ExecBackend::Parallel, ExecBackend::IntraCu];

fn config(backend: ExecBackend) -> DeviceConfig {
    DeviceConfig::builder()
        .with_compute_units(2)
        .with_error_mode(ErrorMode::FixedRate(0.05))
        .with_seed(11)
        .with_backend(backend).build().unwrap()
}

#[test]
fn observability_never_perturbs_results_and_traces_every_backend() {
    let rec = SharedRecorder::new();
    for backend in ALL_BACKENDS {
        let mut traced = Device::new(config(backend).rebuild().with_metrics_window(WINDOW).build().unwrap());
        traced.attach_recorder(&rec);
        let mut traced_k = MixedShard::new(400);
        traced.dispatch(&mut traced_k, 400);

        let mut plain = Device::new(config(backend));
        let mut plain_k = MixedShard::new(400);
        plain.dispatch(&mut plain_k, 400);

        assert_eq!(
            traced.report(),
            plain.report(),
            "{backend:?}: tracing must not change the report"
        );
        assert_eq!(
            traced_k.out, plain_k.out,
            "{backend:?}: tracing must not change kernel output"
        );

        // The metrics sink accounts for every lane the report counted.
        for (cu_idx, cu) in traced.compute_units().iter().enumerate() {
            let m = cu.metrics().expect("metrics sink configured");
            let lanes = m.total().channel_total(MetricsSink::LANES);
            let expected: u64 = cu.tallies().map(|(_, t)| t.lane_instructions).sum();
            assert_eq!(
                lanes as u64, expected,
                "{backend:?} cu{cu_idx}: windowed lanes must match tallies"
            );
            let hits = m.total().channel_total(MetricsSink::HITS);
            assert!(hits <= lanes, "{backend:?} cu{cu_idx}: hits cannot exceed lanes");
            assert!(
                m.series(tm_fpu::FpOp::Sqrt).is_some()
                    && m.series(tm_fpu::FpOp::Add).is_some(),
                "{backend:?} cu{cu_idx}: both opcodes must have a series"
            );
        }
    }

    // One recorder served all three backends: the merged trace validates
    // and carries each backend's launch span.
    let json = rec.chrome_trace_json();
    let stats = validate_chrome_trace(&json).expect("trace must be schema-valid");
    assert_eq!(stats.spans * 2, stats.events, "every span opens and closes");
    assert_eq!(rec.dropped(), 0);
    for backend in ALL_BACKENDS {
        assert!(
            json.contains(&format!("\"backend\":\"{}\"", backend.name())),
            "trace must carry a launch span from {backend:?}"
        );
    }
    assert!(json.contains("launch:mixed_shard"), "launch spans named after kernel");
    assert!(json.contains("\"wf:"), "per-wavefront cycle spans present");
}

#[test]
fn detached_device_records_nothing() {
    let rec = SharedRecorder::new();
    let mut device = Device::new(config(ExecBackend::Sequential));
    device.attach_recorder(&rec);
    device.detach_recorder();
    let mut k = MixedShard::new(128);
    device.dispatch(&mut k, 128);
    assert_eq!(rec.span_count(), 0, "detached device must not record spans");
}

/// Satellite: a reused device must not leak windowed series across
/// `reset_stats` — the second measurement starts from empty windows and
/// reproduces the first run's lane accounting instead of stacking on it.
#[test]
fn reset_stats_clears_metrics_windows_without_leaking() {
    // No recorder attached: reset_stats restarts the cycle timebase,
    // which is fine for windowed metrics but would fold new spans under
    // old timestamps (see `Device::attach_recorder`).
    let mut device = Device::new(
        DeviceConfig::builder()
            .with_compute_units(1)
            .with_metrics_window(WINDOW).build().unwrap(),
    );
    let run = |device: &mut Device| {
        let mut k = MixedShard::new(512);
        device.dispatch(&mut k, 512);
    };
    run(&mut device);
    let first = device.compute_units()[0]
        .metrics()
        .expect("metrics sink configured")
        .clone();
    assert!(!first.total().is_empty(), "first run must populate windows");

    device.reset_stats();
    let cleared = device.compute_units()[0].metrics().unwrap();
    assert!(cleared.total().is_empty(), "reset must clear the totals series");
    for op in cleared.ops().collect::<Vec<_>>() {
        assert!(
            cleared.series(op).unwrap().is_empty(),
            "reset must clear the {op} series"
        );
    }
    assert!(cleared.hit_rate_windows().is_empty());

    // Cycle counters restarted too, so an identical launch folds into the
    // same windows — lanes match the first run exactly rather than
    // doubling (the leak this test guards against).
    run(&mut device);
    let second = device.compute_units()[0].metrics().unwrap();
    assert_eq!(
        second.total().windows().len(),
        first.total().windows().len(),
        "window count must restart, not extend"
    );
    assert_eq!(
        second.total().channel_total(MetricsSink::LANES),
        first.total().channel_total(MetricsSink::LANES),
        "lane accounting must restart from zero"
    );
    assert_eq!(second.total().width(), first.total().width());
}

#[test]
fn hub_publication_never_perturbs_results_on_any_backend() {
    let hub = TelemetryHub::new();
    for backend in ALL_BACKENDS {
        let mut observed = Device::new(config(backend));
        let scope = observed.attach_hub(&hub);
        let mut observed_k = MixedShard::new(400);
        observed.dispatch(&mut observed_k, 400);

        let mut plain = Device::new(config(backend));
        let mut plain_k = MixedShard::new(400);
        plain.dispatch(&mut plain_k, 400);

        assert_eq!(
            observed.report(),
            plain.report(),
            "{backend:?}: hub publication must not change the report"
        );
        assert_eq!(
            observed_k.out, plain_k.out,
            "{backend:?}: hub publication must not change kernel output"
        );

        // The launch landed in the hub under this device's scope.
        let snap = hub.snapshot();
        assert_eq!(
            snap.get(&format!("{scope}launches")),
            Some(&HubMetric::Counter(1)),
            "{backend:?}: launch counter"
        );
        let Some(HubMetric::Sketch(lat)) = snap.get(&format!("{scope}launch_us.mixed_shard"))
        else {
            panic!("{backend:?}: per-kernel latency sketch missing");
        };
        assert_eq!(lat.count(), 1);
        let Some(HubMetric::Gauge(hit_rate)) = snap.get(&format!("{scope}hit_rate")) else {
            panic!("{backend:?}: hit-rate gauge missing");
        };
        assert!((0.0..=1.0).contains(hit_rate));
        // The energy tap publishes one gauge per breakdown component,
        // consistent with the report's total.
        let energy_total: f64 = snap
            .iter()
            .filter(|(name, _)| name.starts_with(&format!("{scope}energy_pj.")))
            .map(|(_, m)| match m {
                HubMetric::Gauge(v) => *v,
                other => panic!("energy series must be gauges, got {other:?}"),
            })
            .sum();
        assert!(
            (energy_total - observed.report().energy.total_pj()).abs() < 1e-6,
            "{backend:?}: energy gauges must sum to the report total"
        );
        // The ECU tap tracks the report exactly.
        assert_eq!(
            snap.get(&format!("{scope}recoveries")),
            Some(&HubMetric::Gauge(observed.report().recoveries as f64)),
            "{backend:?}: recoveries gauge"
        );
    }
}

/// Satellite: a warm-reused device (the pool pattern) must not leak hub
/// series across `reset_stats` — the twin of the windowed-metrics leak
/// test above, for the live telemetry layer.
#[test]
fn reset_stats_clears_hub_series_without_leaking() {
    let hub = TelemetryHub::new();
    let mut device = Device::new(config(ExecBackend::Sequential));
    let scope = device.attach_hub(&hub);

    // Series from another publisher (e.g. the campaign runner) must
    // survive a device reset untouched.
    hub.counter_add("campaign.trials_done", 3);

    let mut k = MixedShard::new(256);
    device.dispatch(&mut k, 256);
    assert!(
        hub.snapshot()
            .iter()
            .any(|(name, _)| name.starts_with(&scope)),
        "first job must publish under the device scope"
    );

    device.reset_stats();
    let snap = hub.snapshot();
    assert!(
        !snap.iter().any(|(name, _)| name.starts_with(&scope)),
        "reset_stats must clear every series under the device scope"
    );
    assert_eq!(
        snap.get("campaign.trials_done"),
        Some(&HubMetric::Counter(3)),
        "series outside the device scope must survive"
    );

    // The next job starts from clean series, not stacked ones.
    let mut k2 = MixedShard::new(256);
    device.dispatch(&mut k2, 256);
    assert_eq!(
        hub.snapshot().get(&format!("{scope}launches")),
        Some(&HubMetric::Counter(1)),
        "launch counter must restart from zero after reset"
    );
}

#[test]
fn hub_and_recorder_compose_and_detach_independently() {
    let hub = TelemetryHub::new();
    let rec = SharedRecorder::new();
    let mut device = Device::new(config(ExecBackend::Sequential));
    let scope = device.attach_hub(&hub);
    device.attach_recorder(&rec);

    let mut k = MixedShard::new(128);
    device.dispatch(&mut k, 128);
    assert!(rec.span_count() > 0, "recorder sees spans");
    assert_eq!(hub.counter(&format!("{scope}launches")), 1, "hub sees launches");

    // Dropping the recorder keeps the hub publishing.
    device.detach_recorder();
    let spans_before = rec.span_count();
    let mut k2 = MixedShard::new(128);
    device.dispatch(&mut k2, 128);
    assert_eq!(rec.span_count(), spans_before, "no spans after detach");
    assert_eq!(hub.counter(&format!("{scope}launches")), 2, "hub still live");

    // Dropping the hub stops publication without disturbing series.
    device.detach_hub();
    let mut k3 = MixedShard::new(128);
    device.dispatch(&mut k3, 128);
    assert_eq!(hub.counter(&format!("{scope}launches")), 2, "hub detached");
}
