//! Property tests of the SIMT vector ALU: every lane of every vector
//! instruction must agree bit-for-bit with the scalar functional model.

use proptest::prelude::*;
use tm_fpu::{compute, FpOp, Operands, ALL_OPS};
use tm_sim::{ComputeUnit, DeviceConfig, VReg, WaveCtx};

fn finite() -> impl Strategy<Value = f32> {
    prop::num::f32::NORMAL | prop::num::f32::ZERO
}

fn op_strategy() -> impl Strategy<Value = FpOp> {
    prop::sample::select(ALL_OPS.to_vec())
}

proptest! {
    /// Lane-wise SIMT execution equals scalar evaluation for every opcode.
    #[test]
    fn vector_alu_matches_scalar_compute(
        op in op_strategy(),
        a in prop::collection::vec(finite(), 1..64),
        b0 in finite(),
        c0 in finite(),
    ) {
        let lanes = a.len();
        let config = DeviceConfig::builder().with_compute_units(1).build().unwrap();
        let mut cu = ComputeUnit::new(&config, 0);
        let mut ctx = WaveCtx::new(&mut cu, (0..lanes).collect());
        let ra = VReg::from_vec(a.clone());
        let rb = VReg::splat(lanes, b0);
        let rc = VReg::splat(lanes, c0);

        let out = match op.arity() {
            1 => ctx.alu(op, &[&ra]),
            2 => ctx.alu(op, &[&ra, &rb]),
            _ => ctx.alu(op, &[&ra, &rb, &rc]),
        };
        for (l, &x) in a.iter().enumerate() {
            let operands = match op.arity() {
                1 => Operands::unary(x),
                2 => Operands::binary(x, b0),
                _ => Operands::ternary(x, b0, c0),
            };
            let expect = compute(op, operands);
            prop_assert_eq!(out[l].to_bits(), expect.to_bits(), "{} lane {}", op, l);
        }
    }

    /// Masked lanes never contribute lookups and always produce 0.0.
    #[test]
    fn masked_lanes_stay_silent(mask in prop::collection::vec(any::<bool>(), 1..64)) {
        let lanes = mask.len();
        let config = DeviceConfig::builder().with_compute_units(1).build().unwrap();
        let mut cu = ComputeUnit::new(&config, 0);
        let mut ctx = WaveCtx::new(&mut cu, (0..lanes).collect());
        ctx.push_mask(&mask);
        let x = VReg::from_fn(lanes, |l| l as f32 + 1.0);
        let out = ctx.sqrt(&x);
        ctx.pop_mask();
        let active = mask.iter().filter(|&&m| m).count() as u64;
        for (l, &m) in mask.iter().enumerate() {
            if m {
                prop_assert_eq!(out[l], (l as f32 + 1.0).sqrt());
            } else {
                prop_assert_eq!(out[l], 0.0);
            }
        }
        prop_assert_eq!(cu.op_stats(FpOp::Sqrt).lookups, active);
    }
}
