//! Proof that the steady-state issue loop performs **zero heap
//! allocations**: a counting global allocator brackets a burst of
//! vector instructions after a warm-up that grows every scratch buffer
//! (per-CU event/cursor/order vectors, per-op units, sink tallies,
//! memo FIFOs).
//!
//! The count is kept per-thread — the libtest harness runs its own
//! bookkeeping threads against the same global allocator, and their
//! allocations must not be charged to the issue loop.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use tm_fpu::FpOp;
use tm_sim::{ComputeUnit, DeviceConfig};

thread_local! {
    /// Allocations made by the current thread. Const-initialized so the
    /// thread-local itself never allocates from inside the allocator.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(Cell::get)
}

/// Counts every allocation (the default `realloc`/`alloc_zeroed` both
/// route through `alloc`, so one counter covers them all).
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // `try_with`: thread-local storage may already be gone during
        // thread teardown.
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn assert_steady_state_alloc_free(config: &DeviceConfig) -> ComputeUnit {
    let mut cu = ComputeUnit::new(config, 0);
    let mut a: Vec<f32> = (0..64).map(|i| (i % 9) as f32 + 0.5).collect();
    let b: Vec<f32> = (0..64).map(|i| (i % 7) as f32 - 3.0).collect();
    let active = vec![true; 64];
    let mut out = Vec::with_capacity(64);

    // Warm-up: instantiates the per-op units and sink tallies, fills
    // the FIFOs, and grows the CU-internal scratch to capacity. The
    // rotating lane-0 value keeps the miss/update path live.
    for i in 0..8 {
        a[0] = i as f32;
        cu.issue_vector_into(FpOp::Add, &[&a, &b], &active, &mut out);
        cu.issue_vector_into(FpOp::Mul, &[&a, &b], &active, &mut out);
        cu.issue_vector_into(FpOp::Sqrt, &[&a], &active, &mut out);
    }

    let before = thread_allocations();
    for i in 0..200 {
        a[0] = (i % 11) as f32 * 1.25;
        cu.issue_vector_into(FpOp::Add, &[&a, &b], &active, &mut out);
        cu.issue_vector_into(FpOp::Mul, &[&a, &b], &active, &mut out);
        cu.issue_vector_into(FpOp::Sqrt, &[&a], &active, &mut out);
    }
    let after = thread_allocations();

    assert_eq!(
        after - before,
        0,
        "steady-state issue loop must not touch the heap"
    );
    // The loop really ran: 24 warm-up + 600 measured instructions.
    assert!(cu.cycles() > 0);
    let lane_instructions: u64 = cu.tallies().map(|(_, t)| t.lane_instructions).sum();
    assert_eq!(lane_instructions, 64 * 3 * 208);
    cu
}

#[test]
fn steady_state_issue_loop_does_not_allocate() {
    assert_steady_state_alloc_free(&DeviceConfig::default());
}

/// Same proof with the windowed metrics sink installed: the warm-up
/// creates the per-op series (the only allocating step) and the reserved
/// window vectors absorb the measured burst — including in-place window
/// coalescing — without touching the heap.
#[test]
fn steady_state_metrics_fold_does_not_allocate() {
    // A small window forces several coalesce steps during the measured
    // burst, proving coalescing itself is allocation-free too.
    let config = DeviceConfig::builder().with_metrics_window(4).build().unwrap();
    let cu = assert_steady_state_alloc_free(&config);
    let metrics = cu.metrics().expect("metrics sink configured");
    assert!(
        !metrics.total().is_empty(),
        "the sink really folded the burst"
    );
    assert!(
        metrics.total().width() > 4,
        "the burst must have outgrown the initial window width"
    );
}
