//! Overhead guards: the windowed metrics sink and the live telemetry
//! hub must each cost at most 5% of hot-path throughput.
//!
//! Two otherwise-identical executors — one plain, one observed — run
//! the same work. Timing is interleaved (plain, observed, plain,
//! observed, ...) and best-of-N per variant so scheduler noise and
//! frequency ramps hit both variants alike; the minima are what a
//! profiler would call the true cost.

use std::hint::black_box;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;
use tm_fpu::FpOp;
use tm_obs::TelemetryHub;
use tm_sim::{ComputeUnit, Device, DeviceConfig, Kernel, VReg, WaveCtx};

// Bursts are kept short (~1ms release, ~15ms debug): a burst spanning
// many scheduler quanta can never dodge a busy neighbour on a one-core
// host, while short bursts slip into the idle gaps — the minima below
// then converge on the true cost. More trials compensate per burst.
const LANES: usize = 64;
const ITERS: usize = 100;
const TRIALS: usize = 40;
const ATTEMPTS: usize = 5;

/// Serializes the timing tests in this binary: run in parallel on a
/// small host they time-slice against each other and corrupt each
/// other's minima.
static TIMING_GATE: Mutex<()> = Mutex::new(());

fn timing_lock() -> MutexGuard<'static, ()> {
    TIMING_GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn issue_burst(cu: &mut ComputeUnit, a: &mut [f32], b: &[f32], active: &[bool]) {
    let mut out = Vec::with_capacity(LANES);
    for i in 0..ITERS {
        // Rotate lane 0 so the miss/update path (the expensive one) stays
        // live instead of degenerating into all-hits.
        a[0] = (i % 13) as f32 * 0.75;
        cu.issue_vector_into(FpOp::Add, &[&*a, b], active, &mut out);
        cu.issue_vector_into(FpOp::Mul, &[&*a, b], active, &mut out);
        cu.issue_vector_into(FpOp::Sqrt, &[&*a], active, &mut out);
        black_box(&out);
    }
}

fn best_of(cu: &mut ComputeUnit, trials: usize) -> f64 {
    let mut a: Vec<f32> = (0..LANES).map(|i| (i % 9) as f32 + 0.5).collect();
    let b: Vec<f32> = (0..LANES).map(|i| (i % 7) as f32 - 3.0).collect();
    let active = vec![true; LANES];
    // Warm-up instantiates per-op units, sink tallies and window vectors.
    issue_burst(cu, &mut a, &b, &active);
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        issue_burst(cu, &mut a, &b, &active);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn metrics_sink_costs_at_most_five_percent() {
    let _gate = timing_lock();
    let plain_cfg = DeviceConfig::builder().with_compute_units(1).build().unwrap();
    let metered_cfg = plain_cfg
        .clone()
        .rebuild()
        .with_metrics_window(1024)
        .build()
        .unwrap();
    let mut plain = ComputeUnit::new(&plain_cfg, 0);
    let mut metered = ComputeUnit::new(&metered_cfg, 0);
    assert!(plain.metrics().is_none());
    assert!(metered.metrics().is_some());

    // Interleave the trials: alternate single-trial measurements so any
    // transient slowdown (another test thread, a frequency step) is as
    // likely to land on either variant. Retry the whole measurement a
    // few times, carrying the minima forward — sustained background
    // load on a single-core host can poison one pass end to end, which
    // interleaving cannot fix, and more trials only ever sharpen a
    // minimum; systematic sink overhead would fail every pass alike.
    let mut best_plain = f64::INFINITY;
    let mut best_metered = f64::INFINITY;
    for attempt in 0..ATTEMPTS {
        for _ in 0..TRIALS {
            best_plain = best_plain.min(best_of(&mut plain, 1));
            best_metered = best_metered.min(best_of(&mut metered, 1));
        }
        if best_metered <= best_plain * 1.05 + 50e-6 {
            break;
        }
        eprintln!(
            "attempt {attempt}: metered {:.1}µs vs plain {:.1}µs — retrying under assumed transient load",
            best_metered * 1e6,
            best_plain * 1e6,
        );
    }
    eprintln!(
        "metrics sink: plain {:.1}µs metered {:.1}µs (ratio {:.3})",
        best_plain * 1e6,
        best_metered * 1e6,
        best_metered / best_plain,
    );

    // 5% relative budget plus a small absolute epsilon so a sub-µs timer
    // quantum cannot fail the test on very fast hosts.
    let budget = best_plain * 1.05 + 50e-6;
    assert!(
        best_metered <= budget,
        "metrics sink overhead too high: metered {:.1}µs vs plain {:.1}µs (budget {:.1}µs)",
        best_metered * 1e6,
        best_plain * 1e6,
        budget * 1e6,
    );
}

/// A kernel with a varied operand stream — misses and updates keep the
/// expensive memoization paths live under the hub-attached device.
struct SqrtMix;
impl Kernel for SqrtMix {
    fn name(&self) -> &'static str {
        "sqrt_mix"
    }
    fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
        let x = VReg::from_fn(ctx.lanes(), |l| (l % 13) as f32 * 0.75 + 0.5);
        let s = ctx.sqrt(&x);
        let _ = ctx.add(&s, &x);
        black_box(&s);
    }
}

fn device_burst(device: &mut Device) {
    for _ in 0..8 {
        device.run(&mut SqrtMix, 4096);
    }
}

fn device_best_of(device: &mut Device, trials: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        device_burst(device);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Gate for the telemetry hub: publication happens once per *launch*
/// (sketch insert + a handful of gauge/counter updates under one short
/// mutex hold), never per instruction, so a hub-attached device must
/// stay within the same ≤5% budget as the metrics sink.
///
/// The whole measurement retries a few times, carrying minima forward:
/// a device burst runs milliseconds, so on a busy single-core host a
/// sustained background load can poison every trial of one measurement
/// pass — something the interleaving cannot average away. Systematic
/// hub overhead would fail every pass alike; transient load does not.
#[test]
fn telemetry_hub_costs_at_most_five_percent() {
    let _gate = timing_lock();
    let cfg = DeviceConfig::builder().with_compute_units(1).build().unwrap();
    let mut plain = Device::new(cfg.clone());
    let hub = TelemetryHub::new();
    let mut observed = Device::new(cfg);
    observed.attach_hub(&hub);

    // Warm-up instantiates per-op units and hub series.
    device_burst(&mut plain);
    device_burst(&mut observed);

    let mut best_plain = f64::INFINITY;
    let mut best_observed = f64::INFINITY;
    for attempt in 0..ATTEMPTS {
        for _ in 0..TRIALS {
            best_plain = best_plain.min(device_best_of(&mut plain, 1));
            best_observed = best_observed.min(device_best_of(&mut observed, 1));
        }
        if best_observed <= best_plain * 1.05 + 50e-6 {
            break;
        }
        eprintln!(
            "attempt {attempt}: observed {:.1}µs vs plain {:.1}µs — retrying under assumed transient load",
            best_observed * 1e6,
            best_plain * 1e6,
        );
    }
    eprintln!(
        "telemetry hub: plain {:.1}µs observed {:.1}µs (ratio {:.3})",
        best_plain * 1e6,
        best_observed * 1e6,
        best_observed / best_plain,
    );

    assert!(hub.counter("sim0.launches") > 0, "hub actually saw launches");
    let budget = best_plain * 1.05 + 50e-6;
    assert!(
        best_observed <= budget,
        "telemetry hub overhead too high: observed {:.1}µs vs plain {:.1}µs (budget {:.1}µs)",
        best_observed * 1e6,
        best_plain * 1e6,
        budget * 1e6,
    );
}
