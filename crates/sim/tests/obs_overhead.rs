//! Overhead guard: the windowed metrics sink must cost at most 5% of
//! hot-path throughput.
//!
//! Two compute units — identical except that one carries a
//! [`tm_sim::MetricsSink`] — issue the same instruction mix. Timing is
//! interleaved (plain, metered, plain, metered, ...) and best-of-N per
//! variant so scheduler noise and frequency ramps hit both variants
//! alike; the minima are what a profiler would call the true cost.

use std::hint::black_box;
use std::time::Instant;
use tm_fpu::FpOp;
use tm_sim::{ComputeUnit, DeviceConfig};

const LANES: usize = 64;
const ITERS: usize = 400;
const TRIALS: usize = 30;

fn issue_burst(cu: &mut ComputeUnit, a: &mut [f32], b: &[f32], active: &[bool]) {
    let mut out = Vec::with_capacity(LANES);
    for i in 0..ITERS {
        // Rotate lane 0 so the miss/update path (the expensive one) stays
        // live instead of degenerating into all-hits.
        a[0] = (i % 13) as f32 * 0.75;
        cu.issue_vector_into(FpOp::Add, &[&*a, b], active, &mut out);
        cu.issue_vector_into(FpOp::Mul, &[&*a, b], active, &mut out);
        cu.issue_vector_into(FpOp::Sqrt, &[&*a], active, &mut out);
        black_box(&out);
    }
}

fn best_of(cu: &mut ComputeUnit, trials: usize) -> f64 {
    let mut a: Vec<f32> = (0..LANES).map(|i| (i % 9) as f32 + 0.5).collect();
    let b: Vec<f32> = (0..LANES).map(|i| (i % 7) as f32 - 3.0).collect();
    let active = vec![true; LANES];
    // Warm-up instantiates per-op units, sink tallies and window vectors.
    issue_burst(cu, &mut a, &b, &active);
    let mut best = f64::INFINITY;
    for _ in 0..trials {
        let start = Instant::now();
        issue_burst(cu, &mut a, &b, &active);
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

#[test]
fn metrics_sink_costs_at_most_five_percent() {
    let plain_cfg = DeviceConfig::builder().with_compute_units(1).build().unwrap();
    let metered_cfg = plain_cfg
        .clone()
        .rebuild()
        .with_metrics_window(1024)
        .build()
        .unwrap();
    let mut plain = ComputeUnit::new(&plain_cfg, 0);
    let mut metered = ComputeUnit::new(&metered_cfg, 0);
    assert!(plain.metrics().is_none());
    assert!(metered.metrics().is_some());

    // Interleave the trials: alternate single-trial measurements so any
    // transient slowdown (another test thread, a frequency step) is as
    // likely to land on either variant.
    let mut best_plain = f64::INFINITY;
    let mut best_metered = f64::INFINITY;
    for _ in 0..TRIALS {
        best_plain = best_plain.min(best_of(&mut plain, 1));
        best_metered = best_metered.min(best_of(&mut metered, 1));
    }

    // 5% relative budget plus a small absolute epsilon so a sub-µs timer
    // quantum cannot fail the test on very fast hosts.
    let budget = best_plain * 1.05 + 50e-6;
    assert!(
        best_metered <= budget,
        "metrics sink overhead too high: metered {:.1}µs vs plain {:.1}µs (budget {:.1}µs)",
        best_metered * 1e6,
        best_plain * 1e6,
        budget * 1e6,
    );
}
