//! Voltage-overscaling study (the paper's §5.3): scale the FPU supply
//! from 0.90 V down to 0.80 V at constant 1 GHz and watch the baseline
//! architecture drown in recoveries while the memoization LUT — powered
//! at the fixed nominal voltage — masks errant instructions for free.
//!
//! ```text
//! cargo run --release --example voltage_overscaling
//! ```

use temporal_memo::kernels::haar::run_haar;
use temporal_memo::prelude::*;

fn total_energy(arch: ArchMode, vdd: f64, signal: &[f32]) -> (f64, u64, u64) {
    let config = DeviceConfig::builder()
        .with_arch(arch)
        .with_error_mode(ErrorMode::FromVoltage)
        .with_vdd(vdd)
        .with_seed(2014).build().unwrap();
    let mut device = Device::new(config);
    let _ = run_haar(&mut device, signal);
    let report = device.report();
    let masked = report.total_stats().masked_errors;
    (report.total_energy_pj(), report.recoveries, masked)
}

fn main() {
    // SDK-style small-integer signal: ten distinct values (DwtHaar1D).
    let signal: Vec<f32> = (0..4096).map(|i| ((i * 31 + 7) % 10) as f32).collect();
    let model = VoltageModel::tsmc45();

    println!("Haar wavelet under voltage overscaling (constant clock, LUT at nominal 0.9 V)");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>8} {:>10} {:>9}",
        "Vdd", "error-rate", "baseline(nJ)", "memoized(nJ)", "saving", "recoveries", "masked"
    );
    for step in 0..=10 {
        let vdd = 0.80 + 0.01 * f64::from(step);
        let (base_pj, base_rec, _) = total_energy(ArchMode::Baseline, vdd, &signal);
        let (memo_pj, memo_rec, masked) = total_energy(ArchMode::Memoized, vdd, &signal);
        println!(
            "{:>6.2} {:>11.2}% {:>14.2} {:>14.2} {:>7.1}% {:>10} {:>9}",
            vdd,
            model.error_rate(vdd) * 100.0,
            base_pj / 1e3,
            memo_pj / 1e3,
            (1.0 - memo_pj / base_pj) * 100.0,
            base_rec.max(memo_rec),
            masked
        );
    }
    println!();
    println!("Below the ~0.84-0.85 V knee the error rate rises abruptly; every LUT hit");
    println!("corrects an errant instruction with zero cycle penalty, so the memoized");
    println!("architecture keeps scaling where the baseline's recovery energy explodes.");
}
