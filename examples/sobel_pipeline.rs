//! Error-tolerant image pipeline: Sobel edge detection under approximate
//! memoization, sweeping the threshold and writing the outputs as PGM so
//! you can reproduce the paper's Fig. 2 panels visually.
//!
//! ```text
//! cargo run --release --example sobel_pipeline [side] [out_dir]
//! ```

use std::error::Error;
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;
use temporal_memo::image::{psnr, sobel_reference, synth, write_pgm, GrayImage};
use temporal_memo::kernels::sobel::SobelKernel;
use temporal_memo::kernels::GRAY_LEVELS_PER_THRESHOLD_UNIT;
use temporal_memo::prelude::*;

fn main() -> Result<(), Box<dyn Error>> {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let out_dir = std::env::args().nth(2).unwrap_or_else(|| "sobel_out".into());
    std::fs::create_dir_all(&out_dir)?;

    let input = synth::face(side, side, 7);
    let golden = sobel_reference(&input);
    save(&input, &out_dir, "input.pgm")?;
    save(&golden, &out_dir, "sobel_exact.pgm")?;

    println!("Sobel on a {side}x{side} synthetic face; outputs in {out_dir}/");
    println!(
        "{:>10} {:>10} {:>9} {:>10}  file",
        "threshold", "PSNR(dB)", "hit-rate", "energy(nJ)"
    );
    for paper_t in [0.0f32, 0.2, 0.4, 0.6, 0.8, 1.0] {
        let gray = paper_t * GRAY_LEVELS_PER_THRESHOLD_UNIT;
        let config = DeviceConfig::builder().with_policy(MatchPolicy::threshold(gray)).build().unwrap();
        let mut device = Device::new(config);
        let out = SobelKernel::new(&input).run(&mut device);
        let report = device.report();
        let name = format!("sobel_t{paper_t:.1}.pgm");
        save(&out, &out_dir, &name)?;
        println!(
            "{:>10.1} {:>10.1} {:>8.1}% {:>10.1}  {name}",
            paper_t,
            psnr(&golden, &out),
            report.weighted_hit_rate() * 100.0,
            report.total_energy_pj() / 1e3
        );
    }
    println!("\nthreshold 0 reproduces the exact output (PSNR = inf);");
    println!("larger thresholds trade PSNR for hit rate and energy, as in the paper's Fig. 2.");
    Ok(())
}

fn save(img: &GrayImage, dir: &str, name: &str) -> std::io::Result<()> {
    let file = File::create(Path::new(dir).join(name))?;
    write_pgm(img, BufWriter::new(file))
}
