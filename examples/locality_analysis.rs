//! Trace a kernel and quantify its value locality — the paper's §1
//! premise ("the entropy of data-level parallelism is low") made
//! measurable: operand entropy per FPU type, LRU stack-distance
//! predictions, and the match against the measured FIFO hit rate.
//!
//! ```text
//! cargo run --release --example locality_analysis
//! ```

use temporal_memo::kernels::sobel::SobelKernel;
use temporal_memo::prelude::*;
use temporal_memo::sim::locality::{operand_entropy_bits, summarize, StackDistanceProfile};
use temporal_memo::{image::synth, sim::TraceEvent};

fn main() {
    let input = synth::face(128, 128, 7);
    let config = DeviceConfig::builder()
        .with_compute_units(1)
        .with_trace_depth(2_000_000).build().unwrap();
    let mut device = Device::new(config);
    let _ = SobelKernel::new(&input).run(&mut device);

    let events: Vec<TraceEvent> = device.trace_events().copied().collect();
    println!("traced {} lane instructions of Sobel on a 128x128 face\n", events.len());

    let total_entropy = operand_entropy_bits(events.iter());
    println!("whole-stream operand entropy: {total_entropy:.2} bits");
    println!("(a 32-bit x 2-operand uniform stream could carry up to 64 bits)\n");

    println!(
        "{:<8} {:>9} {:>12} {:>12} {:>26}",
        "op", "events", "entropy(b)", "max-ent(b)", "predicted LRU hit @2/4/16/64"
    );
    for s in summarize(events.iter()) {
        println!(
            "{:<8} {:>9} {:>12.2} {:>12.2}     {:>4.0}% {:>4.0}% {:>4.0}% {:>4.0}%",
            s.op.mnemonic(),
            s.events,
            s.entropy_bits,
            s.max_entropy_bits,
            s.predicted_hit_rates[0] * 100.0,
            s.predicted_hit_rates[1] * 100.0,
            s.predicted_hit_rates[2] * 100.0,
            s.predicted_hit_rates[3] * 100.0
        );
    }

    let profile = StackDistanceProfile::from_events(events.iter());
    let predicted = profile.hit_rate_at_depth(2);
    let measured = device.report().weighted_hit_rate();
    println!();
    println!("cold (first-touch) fraction: {:.1}%", profile.cold_fraction() * 100.0);
    println!(
        "depth-2 LRU prediction {:.1}% vs measured FIFO hit rate {:.1}%",
        predicted * 100.0,
        measured * 100.0
    );
    println!();
    println!("the CDF of the stack-distance histogram IS the FIFO-depth sweep:");
    for depth in [2usize, 4, 8, 16, 32, 64] {
        println!(
            "  depth {depth:>2}: predicted hit rate {:>5.1}%",
            profile.hit_rate_at_depth(depth) * 100.0
        );
    }
}
