//! The §4.2 programming model, stand-alone: drive a single memoization
//! module through its memory-mapped registers — switch matching
//! constraints, preload compiler-computed contexts, and power-gate it —
//! exactly the control surface the paper gives applications.
//!
//! ```text
//! cargo run --example programmable_matching
//! ```

use temporal_memo::memo::{ctrl_bits, MatchPolicy, MemoModule, Reg};
use temporal_memo::prelude::*;

fn main() {
    let mut module = MemoModule::new(FpOp::Sqrt, MatchPolicy::Exact);

    println!("-- exact matching (reset state) --");
    let a = module.access(Operands::unary(2.0), || 2.0f32.sqrt(), false);
    let b = module.access(Operands::unary(2.0), || unreachable!(), false);
    println!("first access: hit={}, second: hit={}", a.hit, b.hit);
    let c = module.access(Operands::unary(2.0000002), || 2.0000002f32.sqrt(), false);
    println!("2.0000002 under exact matching: hit={}", c.hit);

    println!("\n-- programming an approximate threshold through MMIO --");
    // What a driver would do: write the threshold register, flip the
    // threshold-mode bit in CTRL.
    let regs = module.mmio_mut();
    regs.write(Reg::Threshold, 0.5f32.to_bits());
    let ctrl = regs.read(Reg::Ctrl);
    regs.write(Reg::Ctrl, ctrl | ctrl_bits::THRESHOLD_MODE);
    println!("policy now: {:?}", module.policy());
    let d = module.access(Operands::unary(2.3), || unreachable!(), false);
    println!("2.3 within 0.5 of the stored 2.0: hit={}, result={}", d.hit, d.result);

    println!("\n-- masking vector realization --");
    // Alternatively program the 32-bit masking vector to ignore the low
    // 16 fraction bits ("allow mismatches in the less significant bits of
    // the fraction parts").
    module.set_policy(MatchPolicy::MaskBits(temporal_memo::memo::fraction_mask(16)));
    let e = module.access(Operands::unary(2.000001), || unreachable!(), false);
    println!("2.000001 under fraction masking: hit={}", e.hit);

    println!("\n-- compiler-directed preloading --");
    // "compiler-directed analysis techniques or domain experts ... can
    // also store pre-computed values in the LUT".
    module.set_policy(MatchPolicy::Exact);
    module.preload(Operands::unary(9.0), 3.0);
    module.preload(Operands::unary(16.0), 4.0);
    let f = module.access(Operands::unary(9.0), || unreachable!(), false);
    println!("preloaded sqrt(9): hit={}, result={}", f.hit, f.result);

    println!("\n-- a timing error arrives on a hit: masked for free --");
    let g = module.access(Operands::unary(16.0), || unreachable!(), true);
    println!(
        "hit={}, masked_error={}, action: {}",
        g.hit, g.masked_error, g.action
    );

    println!("\n-- application lacks locality: power-gate the module --");
    module.set_enabled(false);
    let h = module.access(Operands::unary(16.0), || 4.0, false);
    println!(
        "gated access: bypassed={}, lookups counted={} (stats: {})",
        h.bypassed,
        module.stats().lookups,
        module.stats()
    );
}
