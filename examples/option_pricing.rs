//! Error-intolerant workloads: price a book of European options with both
//! Black–Scholes and the binomial lattice on the simulated GPGPU, verify
//! against independent `f64` references, and show that exact matching
//! keeps every result bit-correct while still saving energy.
//!
//! ```text
//! cargo run --release --example option_pricing
//! ```

use temporal_memo::kernels::binomial::{binomial_f64, BinomialKernel, OptionSpec};
use temporal_memo::kernels::black_scholes::{black_scholes_f64, BlackScholesKernel, OptionBatch};
use temporal_memo::prelude::*;

fn main() {
    let seed = 7u64;

    // --- Black–Scholes ---------------------------------------------------
    let batch = OptionBatch::generate(2048, seed);
    let mut device = Device::new(DeviceConfig::default());
    let (calls, puts) = BlackScholesKernel::new(&batch).run(&mut device);
    let report = device.report();

    let mut worst = 0.0f64;
    for i in 0..batch.len() {
        let (c64, p64) = black_scholes_f64(
            f64::from(batch.spot[i]),
            f64::from(batch.strike[i]),
            f64::from(batch.maturity[i]),
            f64::from(batch.rate[i]),
            f64::from(batch.volatility[i]),
        );
        worst = worst
            .max((f64::from(calls[i]) - c64).abs())
            .max((f64::from(puts[i]) - p64).abs());
    }
    println!("Black–Scholes: {} options priced", batch.len());
    println!(
        "  worst abs deviation vs f64 reference: {worst:.2e} (single-precision noise only)"
    );
    println!(
        "  FP instructions: {} | hit rate {:.1}% | energy {:.1} nJ",
        report.total_instructions(),
        report.weighted_hit_rate() * 100.0,
        report.total_energy_pj() / 1e3
    );

    // --- Binomial lattice -------------------------------------------------
    let options = OptionSpec::generate(256, seed);
    let steps = 20; // the paper's Table-1 input parameter
    let mut device = Device::new(DeviceConfig::default());
    let prices = BinomialKernel::new(&options, steps).run(&mut device);
    let report = device.report();

    let mut worst = 0.0f64;
    for (i, &opt) in options.iter().enumerate() {
        let p64 = binomial_f64(
            f64::from(opt.spot),
            f64::from(opt.strike),
            f64::from(opt.maturity),
            f64::from(opt.rate),
            f64::from(opt.volatility),
            steps,
        );
        worst = worst.max((f64::from(prices[i]) - p64).abs());
    }
    println!("\nBinomialOption: {} options x {steps}-step lattice", options.len());
    println!("  worst abs deviation vs f64 reference: {worst:.2e}");
    println!(
        "  FP instructions: {} | hit rate {:.1}% | energy {:.1} nJ",
        report.total_instructions(),
        report.weighted_hit_rate() * 100.0,
        report.total_energy_pj() / 1e3
    );
    println!("\nthe binomial kernel's wavefront-uniform CRR parameters and the");
    println!("all-zero out-of-the-money lattice region give it real value locality");
    println!("even under exact (bit-by-bit) matching.");
}
