//! Quickstart: run a tiny kernel on the simulated GPGPU with and without
//! temporal memoization, inject timing errors, and compare what happens.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use temporal_memo::prelude::*;

/// `y[i] = 1 / sqrt(x[i] + 1)` — a little pipeline of ADD → RSQ.
struct InvSqrtKernel {
    input: Vec<f32>,
    output: Vec<f32>,
}

impl Kernel for InvSqrtKernel {
    fn name(&self) -> &'static str {
        "inv_sqrt"
    }

    fn execute(&mut self, ctx: &mut WaveCtx<'_>) {
        let x = VReg::from_fn(ctx.lanes(), |l| self.input[ctx.lane_ids()[l]]);
        let one = ctx.splat(1.0);
        let xp1 = ctx.add(&x, &one);
        let y = ctx.rsq(&xp1);
        for (l, &gid) in ctx.lane_ids().to_vec().iter().enumerate() {
            self.output[gid] = y[l];
        }
    }
}

fn run(arch: ArchMode, error_rate: f64, n: usize) -> (Vec<f32>, DeviceReport) {
    // Low-entropy input: sensor-style readings quantized to 16 levels —
    // the kind of data-parallel value locality the paper exploits.
    let mut kernel = InvSqrtKernel {
        input: (0..n).map(|i| ((i * 7) % 16) as f32).collect(),
        output: vec![0.0; n],
    };
    let config = DeviceConfig::builder()
        .with_arch(arch)
        .with_error_mode(ErrorMode::FixedRate(error_rate))
        .with_seed(42).build().unwrap();
    let mut device = Device::new(config);
    device.run(&mut kernel, n);
    (kernel.output, device.report())
}

fn main() {
    let n = 4096;

    println!("== error-free run ==");
    let (out_base, rep_base) = run(ArchMode::Baseline, 0.0, n);
    let (out_memo, rep_memo) = run(ArchMode::Memoized, 0.0, n);
    assert_eq!(out_base, out_memo, "exact matching is bit-transparent");
    println!(
        "memoized hit rate: {:.1}% | energy: {:.1} nJ vs baseline {:.1} nJ ({:.1}% saved)",
        rep_memo.weighted_hit_rate() * 100.0,
        rep_memo.total_energy_pj() / 1e3,
        rep_base.total_energy_pj() / 1e3,
        (1.0 - rep_memo.total_energy_pj() / rep_base.total_energy_pj()) * 100.0
    );

    println!("\n== 4% timing-error rate ==");
    let (_, rep_base) = run(ArchMode::Baseline, 0.04, n);
    let (out_memo, rep_memo) = run(ArchMode::Memoized, 0.04, n);
    let stats = rep_memo.total_stats();
    println!(
        "errors injected: {} | masked for free by the LUT: {} | ECU recoveries: {}",
        rep_memo.errors_injected, stats.masked_errors, rep_memo.recoveries
    );
    println!(
        "baseline recoveries: {} | energy saved vs baseline: {:.1}%",
        rep_base.recoveries,
        (1.0 - rep_memo.total_energy_pj() / rep_base.total_energy_pj()) * 100.0
    );
    // Even with errors, the architecture's output is always correct —
    // hits mask errors, misses are replayed by the ECU.
    assert_eq!(out_memo, out_base_check(n), "outputs stay correct under errors");
    println!("\noutputs verified correct under timing errors ✓");
}

fn out_base_check(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let x = ((i * 7) % 16) as f32;
            1.0 / (x + 1.0).sqrt()
        })
        .collect()
}
